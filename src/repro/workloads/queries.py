"""Query workload generators mirroring the paper's experiments.

Three query shapes appear in the evaluation:

- Figures 6–7: 200K random queries per *range size expressed as a
  percentage of the domain* (10% … 100%), position uniform.
- Figure 8: ranges of absolute size 1 … 100 over a 2^20 domain, 1000
  random positions per size.
- generic uniform random ranges (used by tests and ablations).
"""

from __future__ import annotations

import random
from typing import Iterator


def random_range(domain_size: int, rng: "random.Random") -> "tuple[int, int]":
    """One uniformly random non-empty range over the domain."""
    a = rng.randrange(domain_size)
    b = rng.randrange(domain_size)
    return (a, b) if a <= b else (b, a)


def random_ranges(
    domain_size: int, count: int, *, seed: int = 0
) -> "list[tuple[int, int]]":
    """``count`` uniformly random ranges."""
    rng = random.Random(seed)
    return [random_range(domain_size, rng) for _ in range(count)]


def fixed_size_ranges(
    domain_size: int, range_size: int, count: int, *, seed: int = 0
) -> "list[tuple[int, int]]":
    """``count`` ranges of exactly ``range_size``, positions uniform."""
    if not 1 <= range_size <= domain_size:
        raise ValueError(
            f"range size must be in [1, {domain_size}], got {range_size}"
        )
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        lo = rng.randrange(domain_size - range_size + 1)
        out.append((lo, lo + range_size - 1))
    return out


def percent_of_domain_ranges(
    domain_size: int, percent: float, count: int, *, seed: int = 0
) -> "list[tuple[int, int]]":
    """Ranges sized to ``percent``% of the domain (Figures 6–7 sweep)."""
    if not 0.0 < percent <= 100.0:
        raise ValueError(f"percent must be in (0, 100], got {percent}")
    range_size = max(1, round(domain_size * percent / 100.0))
    return fixed_size_ranges(domain_size, range_size, count, seed=seed)


def non_intersecting_ranges(
    domain_size: int, count: int, *, seed: int = 0
) -> "list[tuple[int, int]]":
    """Pairwise-disjoint ranges — the workload Constant-* is proven for.

    Partitions the domain into ``count`` strides and samples one range
    inside each, guaranteeing disjointness.
    """
    if count < 1 or count > domain_size:
        raise ValueError(f"count must be in [1, {domain_size}], got {count}")
    rng = random.Random(seed)
    stride = domain_size // count
    out = []
    for i in range(count):
        base = i * stride
        lo = base + rng.randrange(stride)
        hi = lo + rng.randrange(base + stride - lo)
        out.append((lo, min(hi, base + stride - 1)))
    return out


def sweep(
    domain_size: int,
    percents: "tuple[float, ...]" = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
    queries_per_point: int = 20,
    *,
    seed: int = 0,
) -> "Iterator[tuple[float, list[tuple[int, int]]]]":
    """The Figures 6–7 sweep: (percent, queries) pairs."""
    for i, percent in enumerate(percents):
        yield percent, percent_of_domain_ranges(
            domain_size, percent, queries_per_point, seed=seed + i
        )
