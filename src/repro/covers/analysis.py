"""Analytical utilities over the range-covering techniques.

Functions here answer the quantitative questions the paper's design
discussion raises — how many tokens does a range cost, how much does a
tuple replicate, how loose is the SRC cover — exactly (by exhaustion)
on small domains and by sampling on large ones.  The ablation
experiments and several property tests are built on them.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.covers.brc import best_range_cover
from repro.covers.dyadic import DomainTree
from repro.covers.tdag import Tdag
from repro.covers.urc import urc_node_count


def brc_count_distribution(
    range_size: int,
    domain_size: int,
    *,
    max_exact: int = 1 << 14,
    samples: int = 2000,
    seed: int = 0,
) -> Counter:
    """Distribution of BRC cover sizes over range positions.

    Exhaustive when the number of positions is at most ``max_exact``,
    sampled otherwise.  The spread of this distribution is precisely the
    positional information BRC tokens leak and URC destroys.
    """
    if not 1 <= range_size <= domain_size:
        raise ValueError("range size must be within the domain")
    positions = domain_size - range_size + 1
    counts: Counter = Counter()
    if positions <= max_exact:
        for lo in range(positions):
            counts[len(best_range_cover(lo, lo + range_size - 1))] += 1
    else:
        rng = random.Random(seed)
        for _ in range(samples):
            lo = rng.randrange(positions)
            counts[len(best_range_cover(lo, lo + range_size - 1))] += 1
    return counts


def expected_brc_nodes(range_size: int, domain_size: int, **kwargs) -> float:
    """Mean BRC cover size over positions (Figure 8(a)'s smooth curve)."""
    dist = brc_count_distribution(range_size, domain_size, **kwargs)
    total = sum(dist.values())
    return sum(size * count for size, count in dist.items()) / total


def worst_case_cover_size(range_size: int) -> int:
    """Worst-case BRC size = the URC canonical size (Kiayias et al.)."""
    return urc_node_count(range_size)


def replication_factor(domain_size: int, scheme_family: str) -> int:
    """Keywords per tuple for each scheme family (the storage driver).

    ``constant`` → 1; ``logarithmic`` → height+1 (root-to-leaf path);
    ``src`` → worst case over the TDAG (path + one injected node per
    level); ``quadratic`` → worst-case subrange count for a central
    value.
    """
    tree = DomainTree(domain_size)
    if scheme_family == "constant":
        return 1
    if scheme_family == "logarithmic":
        return tree.height + 1
    if scheme_family == "src":
        tdag = Tdag(domain_size)
        return max(
            tdag.keywords_per_value(v)
            for v in range(0, domain_size, max(1, domain_size // 64))
        )
    if scheme_family == "quadratic":
        mid = domain_size // 2
        return (mid + 1) * (domain_size - mid)
    raise ValueError(f"unknown scheme family {scheme_family!r}")


def tdag_cover_ratio(
    domain_size: int, *, samples: int = 1000, seed: int = 0
) -> "tuple[float, float]":
    """(mean, max) of SRC subtree size over range size (Lemma 1 ≤ 4)."""
    tdag = Tdag(domain_size)
    rng = random.Random(seed)
    worst = 0.0
    total = 0.0
    for _ in range(samples):
        a, b = rng.randrange(domain_size), rng.randrange(domain_size)
        lo, hi = min(a, b), max(a, b)
        ratio = tdag.src_cover(lo, hi).size / (hi - lo + 1)
        worst = max(worst, ratio)
        total += ratio
    return total / samples, worst
