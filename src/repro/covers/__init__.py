"""Range-covering techniques over the domain binary tree and TDAG.

The reduction at the heart of the paper — range search becomes
multi-keyword search — is driven entirely by these covers:

- :func:`~repro.covers.brc.best_range_cover` (BRC): minimal exact dyadic
  decomposition, ``O(log R)`` nodes.
- :func:`~repro.covers.urc.uniform_range_cover` (URC): exact cover whose
  level multiset depends only on the range *size*, hiding position.
- :class:`~repro.covers.tdag.Tdag` / SRC: a single covering node from the
  tree-like DAG, subtree size ``O(R)`` (Lemma 1).
"""

from repro.covers.brc import best_range_cover, brc_node_count
from repro.covers.dyadic import DomainTree, Node, leaf
from repro.covers.tdag import Tdag, TdagNode
from repro.covers.urc import (
    canonical_level_multiset,
    uniform_range_cover,
    urc_node_count,
)

__all__ = [
    "DomainTree",
    "Node",
    "Tdag",
    "TdagNode",
    "best_range_cover",
    "brc_node_count",
    "canonical_level_multiset",
    "leaf",
    "uniform_range_cover",
    "urc_node_count",
]
