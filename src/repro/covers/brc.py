"""Best Range Cover (BRC): the minimal dyadic decomposition of a range.

BRC selects the minimum number of binary tree nodes whose subtrees cover
the range *exactly* (the minimum dyadic intervals).  For a range of size
``R`` there are ``O(log R)`` such nodes, at most two per level.

The algorithm is the classical segment-tree decomposition: walk both
endpoints upward simultaneously, peeling off a node whenever an endpoint
is not aligned with its parent.
"""

from __future__ import annotations

from repro.covers.dyadic import Node
from repro.errors import InvalidRangeError


def best_range_cover(lo: int, hi: int) -> list[Node]:
    """Minimal dyadic cover of ``[lo, hi]`` (inclusive), left to right.

    The returned nodes are disjoint, their union is exactly the range,
    and no smaller set of dyadic nodes covers the range.

    Raises
    ------
    InvalidRangeError
        If ``lo > hi`` or either endpoint is negative.
    """
    if lo < 0 or hi < 0 or lo > hi:
        raise InvalidRangeError(f"invalid range [{lo}, {hi}]")

    left_side: list[Node] = []  # nodes peeled off the lower endpoint
    right_side: list[Node] = []  # nodes peeled off the upper endpoint
    level = 0
    while lo <= hi:
        if lo & 1:  # lo is a right child: it cannot merge with its sibling
            left_side.append(Node(level, lo))
            lo += 1
        if not hi & 1:  # hi is a left child: likewise
            right_side.append(Node(level, hi))
            hi -= 1
        if lo > hi:
            break
        lo >>= 1
        hi >>= 1
        level += 1

    right_side.reverse()
    return left_side + right_side


def brc_node_count(lo: int, hi: int) -> int:
    """Number of nodes in the BRC decomposition (cheap helper)."""
    return len(best_range_cover(lo, hi))
