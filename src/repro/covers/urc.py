"""Uniform Range Cover (URC).

BRC's weakness, observed by Kiayias et al. (CCS'13) and exploited by the
paper's URC variants, is that the *number and levels* of cover nodes
depend on where the range sits in the domain: ``[2, 7]`` and ``[1, 6]``
have the same size but different BRC decompositions, which leaks
positional information through the token multiset.

URC fixes this: starting from BRC, it keeps breaking nodes into their two
children until there is at least one node at *every* level ``0 … max``,
where ``max`` is the highest level present in the (current) result.  The
fixed point is the worst-case decomposition for the range size, so the
multiset of node levels becomes a function of ``R`` alone — every range
of the same size is covered by the same number of nodes at the same
levels, indistinguishably.  The cover stays exact and of size
``O(log R)``.
"""

from __future__ import annotations

from collections import Counter

from repro.covers.brc import best_range_cover
from repro.covers.dyadic import Node


def uniform_range_cover(lo: int, hi: int) -> list[Node]:
    """Exact dyadic cover of ``[lo, hi]`` with position-independent levels.

    The result is sorted left-to-right by covered range.  Its multiset of
    levels equals :func:`canonical_level_multiset` of the range size.
    """
    nodes = best_range_cover(lo, hi)
    while True:
        present = {n.level for n in nodes}
        max_level = max(present)
        missing = [lvl for lvl in range(max_level) if lvl not in present]
        if not missing:
            break
        lowest_missing = missing[0]
        # Break one node at the smallest present level above the gap; the
        # split fills the gap from above and conserves exact coverage.
        split_level = min(lvl for lvl in present if lvl > lowest_missing)
        for pos, node in enumerate(nodes):
            if node.level == split_level:
                nodes[pos : pos + 1] = list(node.children())
                break
    nodes.sort(key=lambda n: n.lo)
    return nodes


def canonical_level_multiset(range_size: int) -> Counter:
    """Level multiset every size-``range_size`` range decomposes to.

    Computed by running URC on the left-aligned range ``[0, R-1]``; the
    position-independence property (tested exhaustively and with
    hypothesis in the test suite) makes any representative range valid.
    """
    if range_size < 1:
        raise ValueError(f"range size must be >= 1, got {range_size}")
    return Counter(n.level for n in uniform_range_cover(0, range_size - 1))


def urc_node_count(range_size: int) -> int:
    """Number of URC cover nodes for any range of the given size."""
    return sum(canonical_level_multiset(range_size).values())
