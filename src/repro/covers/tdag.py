"""TDAG: the tree-like directed acyclic graph of Logarithmic-SRC(-i).

A plain binary tree cannot cover an arbitrary range with a *single*
subtree of size proportional to the range: ``[3, 4]`` over ``{0..7}``
straddles the midpoint and forces the root.  The paper's TDAG fixes this
by injecting, between every two adjacent nodes of every level, an extra
node whose subtree spans the right half of the left node and the left
half of the right node.  Lemma 1 then guarantees that any range of size
``R`` is covered by a single TDAG subtree with at most ``4R ∈ O(R)``
leaves.

Node addressing
---------------
*Regular* nodes are the binary tree's ``(level, index)`` dyadic nodes.
An *injected* node at level ℓ ≥ 1 with index i covers
``[i·2^ℓ + 2^(ℓ-1), (i+1)·2^ℓ + 2^(ℓ-1) - 1]`` — the half-shifted grid.
Injected nodes exist for ``i ∈ {0, …, 2^(h-ℓ) - 2}`` (there is no
injected node hanging past the domain edge, and none at the root level
of a height-h tree beyond ``h-1``... more precisely the count at level ℓ
is ``2^(h-ℓ) - 1``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.covers.dyadic import DomainTree, Node
from repro.errors import DomainError


@dataclass(frozen=True, order=True)
class TdagNode:
    """A TDAG node: a dyadic node, or a half-shifted injected node."""

    level: int
    index: int
    injected: bool = False

    def __post_init__(self) -> None:
        if self.level < 0 or self.index < 0:
            raise DomainError("TDAG node level/index must be >= 0")
        if self.injected and self.level < 1:
            raise DomainError("injected nodes exist only at level >= 1")

    @property
    def lo(self) -> int:
        """Smallest domain value covered by this node's subtree."""
        base = self.index << self.level
        return base + (1 << (self.level - 1)) if self.injected else base

    @property
    def hi(self) -> int:
        """Largest domain value covered by this node's subtree."""
        return self.lo + self.size - 1

    @property
    def size(self) -> int:
        """Number of leaves under this node: ``2^level``."""
        return 1 << self.level

    def covers_value(self, value: int) -> bool:
        """True iff ``value`` lies under this node."""
        return self.lo <= value <= self.hi

    def covers_range(self, lo: int, hi: int) -> bool:
        """True iff ``[lo, hi]`` lies entirely under this node."""
        return self.lo <= lo and hi <= self.hi

    def label(self) -> bytes:
        """Canonical keyword label (``I:`` injected vs ``R:`` regular)."""
        kind = b"I" if self.injected else b"R"
        return b"%s:%d:%d" % (kind, self.level, self.index)

    @classmethod
    def from_dyadic(cls, node: Node) -> "TdagNode":
        """Wrap a regular binary tree node as a TDAG node."""
        return cls(node.level, node.index, injected=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        kind = "injected" if self.injected else "regular"
        return f"TdagNode({kind}, level={self.level}, range=[{self.lo},{self.hi}])"


class Tdag:
    """TDAG built over a domain of ``domain_size`` values.

    The structure is never materialized — all questions (which nodes
    cover a value, which single node SRC-covers a range) are answered
    arithmetically, so a TDAG over a 2^32 domain costs nothing to hold.
    """

    def __init__(self, domain_size: int) -> None:
        self.tree = DomainTree(domain_size)
        self.height = self.tree.height
        self.domain_size = domain_size
        self.padded_size = self.tree.padded_size

    def node_exists(self, node: TdagNode) -> bool:
        """True iff ``node`` is part of this TDAG."""
        if node.level > self.height:
            return False
        width = 1 << (self.height - node.level)
        if node.injected:
            return node.index <= width - 2
        return node.index <= width - 1

    def injected_count(self, level: int) -> int:
        """Number of injected nodes at ``level`` (0 at the root level)."""
        if not 1 <= level <= self.height:
            return 0
        return (1 << (self.height - level)) - 1

    def covering_nodes(self, value: int) -> list[TdagNode]:
        """All TDAG nodes whose subtree contains ``value``.

        These are the keywords Logarithmic-SRC assigns to a tuple with
        attribute value ``value``: the ``height + 1`` regular path nodes
        plus at most one injected node per level — ``O(log m)`` total.
        """
        self.tree.check_value(value)
        nodes = [
            TdagNode(n.level, n.index) for n in self.tree.path_nodes(value)
        ]
        for level in range(1, self.height + 1):
            half = 1 << (level - 1)
            shifted = value - half
            if shifted < 0:
                continue
            index = shifted >> level
            candidate = TdagNode(level, index, injected=True)
            if self.node_exists(candidate) and candidate.covers_value(value):
                nodes.append(candidate)
        return nodes

    def src_cover(self, lo: int, hi: int) -> TdagNode:
        """Single Range Cover: the smallest TDAG node covering ``[lo, hi]``.

        Runs in ``O(log m)`` by scanning levels upward from the smallest
        level that could possibly fit the range.  Lemma 1 guarantees the
        returned subtree has at most ``4·(hi - lo + 1)`` leaves.
        """
        lo, hi = self.tree.check_range(lo, hi)
        range_size = hi - lo + 1
        start_level = max(0, (range_size - 1).bit_length())
        for level in range(start_level, self.height + 1):
            if (lo >> level) == (hi >> level):
                return TdagNode(level, lo >> level)
            if level >= 1:
                half = 1 << (level - 1)
                if lo >= half and ((lo - half) >> level) == ((hi - half) >> level):
                    candidate = TdagNode(level, (lo - half) >> level, injected=True)
                    if self.node_exists(candidate):
                        return candidate
        # Unreachable: the root always covers any in-domain range.
        raise AssertionError("SRC cover must exist; domain tree is inconsistent")

    def keywords_per_value(self, value: int) -> int:
        """Replication factor of a tuple with this attribute value."""
        return len(self.covering_nodes(value))

    def subtree_leaves(self, node: TdagNode) -> range:
        """The contiguous domain interval under ``node`` as a ``range``."""
        return range(node.lo, node.hi + 1)
