"""Dyadic range algebra over a binary tree on the attribute domain.

Every RSSE scheme in the paper rests on the same combinatorial object: a
full binary tree built bottom-up over the (power-of-two padded) attribute
domain ``A = {0, …, m-1}``.  A node at ``level`` ℓ with ``index`` i covers
the dyadic range ``[i·2^ℓ, (i+1)·2^ℓ - 1]``; leaves sit at level 0 and the
root at level ``height = log2(m_padded)``.

This module defines the :class:`Node` value type and the
:class:`DomainTree` helper that validates values/ranges and enumerates
root-to-leaf paths.  The cover algorithms themselves live in
:mod:`repro.covers.brc`, :mod:`repro.covers.urc` and
:mod:`repro.covers.tdag`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DomainError, InvalidRangeError


@dataclass(frozen=True, order=True)
class Node:
    """A dyadic-range node ``(level, index)`` of the domain binary tree.

    Immutable and totally ordered (by level, then index) so nodes can be
    dict keys, set members, and sorted deterministically.
    """

    level: int
    index: int

    def __post_init__(self) -> None:
        if self.level < 0:
            raise DomainError(f"node level must be >= 0, got {self.level}")
        if self.index < 0:
            raise DomainError(f"node index must be >= 0, got {self.index}")

    @property
    def lo(self) -> int:
        """Smallest domain value covered by this node's subtree."""
        return self.index << self.level

    @property
    def hi(self) -> int:
        """Largest domain value covered by this node's subtree."""
        return ((self.index + 1) << self.level) - 1

    @property
    def size(self) -> int:
        """Number of leaves (domain values) under this node: ``2^level``."""
        return 1 << self.level

    def covers_value(self, value: int) -> bool:
        """True iff ``value`` lies in this node's dyadic range."""
        return self.lo <= value <= self.hi

    def covers_range(self, lo: int, hi: int) -> bool:
        """True iff the whole range ``[lo, hi]`` lies under this node."""
        return self.lo <= lo and hi <= self.hi

    def children(self) -> tuple["Node", "Node"]:
        """The two level-(ℓ-1) children; leaves raise :class:`DomainError`."""
        if self.level == 0:
            raise DomainError("leaf nodes have no children")
        return (
            Node(self.level - 1, self.index * 2),
            Node(self.level - 1, self.index * 2 + 1),
        )

    def parent(self) -> "Node":
        """The level-(ℓ+1) parent node."""
        return Node(self.level + 1, self.index // 2)

    def label(self) -> bytes:
        """Canonical keyword label for this node, used by SSE layers.

        The encoding is unambiguous (``R:`` distinguishes regular binary
        tree nodes from the TDAG's injected ``I:`` nodes) and fixed for
        the lifetime of an index.
        """
        return b"R:%d:%d" % (self.level, self.index)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"Node(level={self.level}, index={self.index}, range=[{self.lo},{self.hi}])"


def leaf(value: int) -> Node:
    """The level-0 node for a single domain value."""
    return Node(0, value)


class DomainTree:
    """Binary tree metadata for a domain ``{0, …, m-1}``.

    ``m`` need not be a power of two; the tree is built over the padded
    size ``2^height`` with ``height = ceil(log2 m)``, exactly as one pads
    in practice.  Values and query ranges are validated against the
    *unpadded* ``m`` so applications cannot accidentally query padding.
    """

    def __init__(self, domain_size: int) -> None:
        if domain_size < 1:
            raise DomainError(f"domain size must be >= 1, got {domain_size}")
        self.domain_size = domain_size
        self.height = max(1, (domain_size - 1).bit_length())
        self.padded_size = 1 << self.height

    @classmethod
    def from_bits(cls, bits: int) -> "DomainTree":
        """Tree over a domain of exactly ``2^bits`` values."""
        return cls(1 << bits)

    @property
    def root(self) -> Node:
        """The root node covering the whole padded domain."""
        return Node(self.height, 0)

    def check_value(self, value: int) -> int:
        """Validate a domain value, returning it unchanged."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise DomainError(f"domain value must be int, got {type(value).__name__}")
        if not 0 <= value < self.domain_size:
            raise DomainError(
                f"value {value} outside domain [0, {self.domain_size - 1}]"
            )
        return value

    def check_range(self, lo: int, hi: int) -> tuple[int, int]:
        """Validate a query range ``[lo, hi]`` (inclusive ends)."""
        self.check_value(lo)
        self.check_value(hi)
        if lo > hi:
            raise InvalidRangeError(f"range lower bound {lo} exceeds upper bound {hi}")
        return lo, hi

    def path_nodes(self, value: int) -> list[Node]:
        """Nodes on the root-to-leaf path of ``value`` (root first).

        These are exactly the ``height + 1`` dyadic ranges containing the
        value — the keywords Logarithmic-BRC/URC assign to a tuple.
        """
        self.check_value(value)
        return [Node(lvl, value >> lvl) for lvl in range(self.height, -1, -1)]

    def value_bits(self, value: int) -> list[int]:
        """Big-endian bit path of ``value`` (length = tree height).

        Bit ``0`` means "descend left", ``1`` "descend right" — the GGM
        traversal convention of paper Section 2.2.
        """
        self.check_value(value)
        return [(value >> i) & 1 for i in range(self.height - 1, -1, -1)]

    def node_in_tree(self, node: Node) -> bool:
        """True iff ``node`` exists within this (padded) tree."""
        return 0 <= node.level <= self.height and node.index < (
            1 << (self.height - node.level)
        )
