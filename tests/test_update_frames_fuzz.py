"""Fuzzing the live-ingest frames with hostile bytes.

Update frames cross the same trust boundary as every other inbound
frame: truncated, oversized, mutated or garbage
``UpdateRequest``/``UpdateBatchRequest``/``StoreOpenRequest`` bodies
must come back as typed :class:`~repro.protocol.messages.ErrorResponse`
frames — never an unhandled exception, and never poison for pipelined
honest frames sharing the connection.
"""

from __future__ import annotations

import random
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError, UpdateError
from repro.protocol import (
    ErrorResponse,
    OkResponse,
    RsseServer,
    StoreOpenRequest,
    StoreSearchRequest,
    StoreSearchResponse,
    UpdateBatchRequest,
    UpdateRequest,
    parse_frame,
    parse_message,
)
from repro.protocol.messages import (
    TAG_STORE_OPEN,
    TAG_UPDATE_BATCH_REQUEST,
    TAG_UPDATE_REQUEST,
)
from repro.updates.batch import OP_LEN, UpdateOp, insert

ALL_UPDATE_TAGS = (TAG_UPDATE_REQUEST, TAG_UPDATE_BATCH_REQUEST, TAG_STORE_OPEN)


def _forge(tag: int, body: bytes) -> bytes:
    return struct.pack(">BI", tag, len(body)) + body


class TestUpdateParserFuzz:
    @given(st.sampled_from(ALL_UPDATE_TAGS), st.binary(max_size=300))
    @settings(max_examples=300)
    def test_random_bodies_never_crash_parser(self, tag, body):
        try:
            parse_message(_forge(tag, body))
        except ReproError:
            pass  # the only acceptable failure mode

    @given(st.data())
    @settings(max_examples=150)
    def test_mutated_batch_frames(self, data):
        ops = tuple(insert(i, i * 3) for i in range(4))
        frame = bytearray(UpdateBatchRequest(5, ops, "feed").to_frame())
        pos = data.draw(st.integers(0, len(frame) - 1))
        frame[pos] ^= data.draw(st.integers(1, 255))
        try:
            parse_message(bytes(frame))
        except ReproError:
            pass

    @given(st.binary(min_size=1, max_size=OP_LEN + 8))
    @settings(max_examples=150)
    def test_op_decode_is_typed(self, blob):
        """UpdateOp.decode: wrong length or unknown kind byte is always
        an UpdateError, never IndexError/struct.error/ValueError."""
        try:
            op = UpdateOp.decode(blob)
        except UpdateError:
            return
        assert len(blob) == OP_LEN
        assert op.encode() == blob

    def test_truncated_batch_bodies_rejected(self):
        ops = tuple(insert(i, i) for i in range(3))
        tag, body = parse_frame(UpdateBatchRequest(9, ops).to_frame())
        for cut in (1, 7, 9, len(body) - 1):
            with pytest.raises(ReproError):
                parse_message(_forge(tag, body[:cut]))

    def test_oversized_op_chunk_rejected(self):
        # A chunk one byte longer than OP_LEN is not a valid op.
        chunk = b"\x00" * (OP_LEN + 1)
        body = (
            (9).to_bytes(8, "big")
            + (1).to_bytes(4, "big")
            + len(chunk).to_bytes(4, "big")
            + chunk
        )
        with pytest.raises(ReproError):
            parse_message(_forge(TAG_UPDATE_BATCH_REQUEST, body))

    def test_unknown_op_kind_rejected(self):
        bad_op = bytes([0xEE]) + (1).to_bytes(8, "big") + (2).to_bytes(8, "big")
        with pytest.raises(UpdateError):
            parse_message(_forge(TAG_UPDATE_REQUEST, (9).to_bytes(8, "big") + bad_op))

    @given(st.binary(max_size=64))
    @settings(max_examples=100)
    def test_garbage_trace_trailer_on_batch_never_crashes(self, tail):
        base = UpdateBatchRequest(5, (insert(1, 2),), "deadbeefdeadbeef")
        tag, body = parse_frame(base.to_frame())
        forged_body = body[:-18] + tail  # strip the 2+16B trace trailer
        try:
            parsed = parse_message(_forge(tag, forged_body))
        except ReproError:
            return
        assert parsed.ops == (insert(1, 2),)
        assert isinstance(parsed.trace, str) and len(parsed.trace) <= 64


class TestUpdateServerFuzz:
    @given(st.sampled_from(ALL_UPDATE_TAGS), st.binary(max_size=200))
    @settings(max_examples=200)
    def test_server_answers_hostile_update_frames(self, tag, body):
        """handle_request is total for update frames too: every hostile
        body gets a typed ErrorResponse frame back."""
        server = RsseServer()
        response = server.handle_request(_forge(tag, body))
        assert response is not None
        parsed = parse_message(response)
        if not isinstance(parsed, OkResponse):
            assert isinstance(parsed, ErrorResponse)

    def test_update_against_classic_edb_handle_is_state_error(self):
        from repro.protocol import UploadIndex

        server = RsseServer()
        server.handle_request(UploadIndex(3, b"").to_frame())
        reply = parse_message(
            server.handle_request(UpdateRequest(3, insert(1, 2)).to_frame())
        )
        assert isinstance(reply, ErrorResponse)
        assert reply.code == "index-state"

    def test_store_open_on_classic_handle_is_state_error(self):
        from repro.protocol import UploadIndex

        server = RsseServer()
        server.handle_request(UploadIndex(3, b"x").to_frame())
        reply = parse_message(
            server.handle_request(
                StoreOpenRequest(3, 64, ("logarithmic-brc",)).to_frame()
            )
        )
        assert isinstance(reply, ErrorResponse)
        assert reply.code == "index-state"


class TestUpdateSocketFuzz:
    """Hostile update frames on a live TCP server must not poison the
    pipelined neighbors sharing the connection."""

    @pytest.fixture()
    def live_store_server(self):
        from repro.net import serve_in_thread

        core = RsseServer()
        core.handle_request(StoreOpenRequest(1, 256, ("logarithmic-brc",), 2).to_frame())
        core.handle_request(
            UpdateBatchRequest(1, tuple(insert(i, i * 3) for i in range(10))).to_frame()
        )
        with serve_in_thread(core) as handle:
            yield handle

    @staticmethod
    def _pipeline(port: int, frames: "list[bytes]") -> "list[bytes]":
        """Send frames back-to-back on one connection, return replies."""
        import socket as socketlib

        from repro.net import FrameReader

        with socketlib.create_connection(("127.0.0.1", port), timeout=5) as sock:
            sock.sendall(b"".join(frames))
            sock.shutdown(socketlib.SHUT_WR)
            sock.settimeout(5)
            received = b""
            try:
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    received += chunk
            except OSError:
                pass
        return FrameReader().feed(received)

    def test_poison_batch_between_honest_searches(self, live_store_server):
        good = StoreSearchRequest(1, 0, 255).to_frame()
        poison = _forge(
            TAG_UPDATE_BATCH_REQUEST,
            (1).to_bytes(8, "big")
            + (1).to_bytes(4, "big")
            + (OP_LEN).to_bytes(4, "big")
            + bytes([0xEE]) * OP_LEN,  # unknown op kind
        )
        replies = self._pipeline(live_store_server.port, [good, poison, good])
        assert len(replies) == 3
        first, middle, last = (parse_message(r) for r in replies)
        assert isinstance(first, StoreSearchResponse)
        assert isinstance(middle, ErrorResponse) and middle.code == "update"
        assert isinstance(last, StoreSearchResponse)
        assert last.ids == first.ids == tuple(range(10))

    def test_garbage_update_streams_never_poison_the_server(
        self, live_store_server
    ):
        rng = random.Random(0xBEEF)
        for _ in range(8):
            tag = rng.choice(ALL_UPDATE_TAGS)
            body = bytes(rng.randrange(256) for _ in range(rng.randrange(120)))
            self._pipeline(live_store_server.port, [_forge(tag, body)])
        replies = self._pipeline(
            live_store_server.port, [StoreSearchRequest(1, 0, 255).to_frame()]
        )
        answer = parse_message(replies[0])
        assert isinstance(answer, StoreSearchResponse)
        assert answer.ids == tuple(range(10))

    def test_hostile_batch_never_mutates_the_store(self, live_store_server):
        """A rejected batch is all-or-nothing: one bad op chunk means
        zero ops applied."""
        good_op = insert(99, 7).encode()
        bad_op = bytes([0xEE]) * OP_LEN
        body = (
            (1).to_bytes(8, "big")
            + (2).to_bytes(4, "big")
            + len(good_op).to_bytes(4, "big")
            + good_op
            + len(bad_op).to_bytes(4, "big")
            + bad_op
        )
        replies = self._pipeline(
            live_store_server.port,
            [
                _forge(TAG_UPDATE_BATCH_REQUEST, body),
                StoreSearchRequest(1, 0, 255).to_frame(),
            ],
        )
        error, answer = (parse_message(r) for r in replies)
        assert isinstance(error, ErrorResponse) and error.code == "update"
        assert 99 not in answer.ids  # the good op did not sneak through
