"""Unit tests for the Bloom filter substrate."""

from __future__ import annotations

import random

import pytest

from repro.baselines.bloom import BloomFilter, optimal_bits, optimal_hashes


class TestSizing:
    def test_bits_grow_with_elements(self):
        assert optimal_bits(1000, 0.01) > optimal_bits(100, 0.01)

    def test_bits_grow_with_precision(self):
        assert optimal_bits(100, 0.001) > optimal_bits(100, 0.01)

    def test_zero_elements_minimal(self):
        assert optimal_bits(0, 0.01) == 8

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_bad_fp_rate(self, bad):
        with pytest.raises(ValueError):
            optimal_bits(10, bad)

    def test_hash_count_positive(self):
        assert optimal_hashes(100, 10) >= 1
        assert optimal_hashes(8, 0) == 1


class TestMembership:
    def test_no_false_negatives(self):
        bf = BloomFilter(500, 0.01)
        elements = [f"e{i}".encode() for i in range(500)]
        for e in elements:
            bf.add(e)
        assert all(e in bf for e in elements)

    def test_empty_filter_rejects_everything(self):
        bf = BloomFilter(100, 0.01)
        assert b"anything" not in bf

    def test_false_positive_rate_near_design(self):
        rng = random.Random(1)
        bf = BloomFilter(2000, 0.01)
        for i in range(2000):
            bf.add(f"member{i}".encode())
        trials = 20_000
        fps = sum(1 for i in range(trials) if f"other{i}".encode() in bf)
        assert fps / trials < 0.03  # within 3x of the 1% design point

    def test_hashed_api_matches_bytes_api(self):
        bf1 = BloomFilter(100, 0.01)
        bf2 = BloomFilter(100, 0.01)
        for i in range(50):
            element = f"x{i}".encode()
            bf1.add(element)
            bf2.add_hashed(*BloomFilter.hash_pair(element))
        for i in range(50):
            element = f"x{i}".encode()
            assert element in bf2
            assert bf1.contains_hashed(*BloomFilter.hash_pair(element))

    def test_size_bytes(self):
        bf = BloomFilter(1000, 0.01)
        assert bf.size_bytes() == (bf.bits + 7) // 8

    def test_overload_degrades_not_breaks(self):
        bf = BloomFilter(10, 0.01)
        elements = [f"e{i}".encode() for i in range(500)]
        for e in elements:
            bf.add(e)
        assert all(e in bf for e in elements)  # still no false negatives
