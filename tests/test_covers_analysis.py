"""Tests for the cover-analysis utilities."""

from __future__ import annotations

import pytest

from repro.covers.analysis import (
    brc_count_distribution,
    expected_brc_nodes,
    replication_factor,
    tdag_cover_ratio,
    worst_case_cover_size,
)
from repro.covers.urc import urc_node_count


class TestBrcDistribution:
    def test_exhaustive_counts_all_positions(self):
        dist = brc_count_distribution(6, 64)
        assert sum(dist.values()) == 64 - 6 + 1

    def test_single_value_ranges_always_one_node(self):
        dist = brc_count_distribution(1, 256)
        assert dist == {1: 256}

    def test_aligned_power_of_two_varies(self):
        dist = brc_count_distribution(8, 256)
        assert 1 in dist  # aligned positions need a single node
        assert max(dist) == worst_case_cover_size(8)

    def test_sampled_path(self):
        dist = brc_count_distribution(100, 1 << 20, samples=300, seed=1)
        assert sum(dist.values()) == 300
        assert max(dist) <= worst_case_cover_size(100)

    def test_bad_range_size(self):
        with pytest.raises(ValueError):
            brc_count_distribution(0, 64)
        with pytest.raises(ValueError):
            brc_count_distribution(65, 64)

    def test_expected_between_min_and_worst(self):
        mean = expected_brc_nodes(37, 1 << 12)
        dist = brc_count_distribution(37, 1 << 12)
        assert min(dist) <= mean <= max(dist)


class TestWorstCase:
    def test_matches_urc(self):
        for size in (1, 2, 6, 100, 1000):
            assert worst_case_cover_size(size) == urc_node_count(size)

    def test_brc_never_exceeds_worst_case_exhaustive(self):
        for size in (3, 6, 12):
            dist = brc_count_distribution(size, 128)
            assert max(dist) <= worst_case_cover_size(size)


class TestReplication:
    def test_constant_is_one(self):
        assert replication_factor(1 << 10, "constant") == 1

    def test_logarithmic_is_height_plus_one(self):
        assert replication_factor(1 << 10, "logarithmic") == 11

    def test_src_at_most_double_logarithmic(self):
        log = replication_factor(1 << 10, "logarithmic")
        src = replication_factor(1 << 10, "src")
        assert log < src <= 2 * log

    def test_quadratic_is_quadratic(self):
        assert replication_factor(16, "quadratic") == 9 * 8

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            replication_factor(16, "cubic")


class TestTdagRatio:
    def test_lemma1_bound(self):
        mean, worst = tdag_cover_ratio(1 << 14, samples=500, seed=3)
        assert 1.0 <= mean <= worst <= 4.0
