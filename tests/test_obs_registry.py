"""Unit tests for the metrics registry (PR 8 tentpole, part 1).

Covers instrument semantics (counters, gauges, histograms), the
bounded-memory percentile contract, the disabled/no-op path, snapshot
and delta-cursor semantics, and collector isolation.
"""

from __future__ import annotations

import threading

from repro.obs.registry import (
    NULL_INSTRUMENT,
    SCHEMA_VERSION,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    configure_default_registry,
    default_registry,
    metrics_payload,
    obs_enabled,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.to_value() == 5

    def test_seq_advances_on_update(self):
        c = Counter("x")
        assert c.last_seq() == 0
        c.inc()
        first = c.last_seq()
        assert first > 0
        c.inc()
        assert c.last_seq() > first

    def test_thread_safety_no_lost_increments(self):
        c = Counter("x")

        def worker():
            for _ in range(2000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_gauge(self):
        g = Gauge("depth")
        g.set(3.5)
        assert g.value == 3.5

    def test_pull_gauge_reads_fn(self):
        box = {"n": 7}
        g = Gauge("pool", fn=lambda: box["n"])
        assert g.value == 7
        box["n"] = 9
        assert g.value == 9

    def test_pull_gauge_swallows_fn_errors(self):
        g = Gauge("bad", fn=lambda: 1 / 0)
        assert g.value is None

    def test_pull_gauge_always_fresh_in_deltas(self):
        g = Gauge("pool", fn=lambda: 1)
        assert g.last_seq() > 0  # always past any cursor


class TestLatencyHistogram:
    def test_empty_percentile_is_zero(self):
        h = LatencyHistogram("op")
        assert h.percentile(0.5) == 0.0
        assert h.to_value()["count"] == 0

    def test_percentiles_within_one_bucket(self):
        """Log-spaced ×√2 buckets: a reported percentile must sit
        within one bucket step (×1.19 each way, call it ±25%) of the
        true order statistic."""
        h = LatencyHistogram("op")
        samples = [i / 1000.0 for i in range(1, 1001)]  # 1ms .. 1s uniform
        for s in samples:
            h.observe(s)
        for q in (0.50, 0.95, 0.99):
            true = samples[int(q * len(samples)) - 1]
            got = h.percentile(q)
            assert true / 1.3 <= got <= true * 1.3, (q, true, got)

    def test_percentile_clamped_to_observed_range(self):
        h = LatencyHistogram("op")
        h.observe(0.004)
        # One sample: every percentile IS that sample, not a bucket mid.
        assert h.percentile(0.5) == 0.004
        assert h.percentile(0.99) == 0.004

    def test_memory_is_bounded(self):
        h = LatencyHistogram("op")
        buckets_before = len(h._counts)
        for i in range(10_000):
            h.observe((i % 977) * 1e-5)
        assert len(h._counts) == buckets_before
        assert h.count == 10_000

    def test_out_of_range_observations_land_in_end_buckets(self):
        h = LatencyHistogram("op")
        h.observe(1e-9)   # below the first bound
        h.observe(9999.0)  # above the last bound
        v = h.to_value()
        assert v["count"] == 2
        assert v["min_seconds"] == 1e-9
        assert v["max_seconds"] == 9999.0
        # Percentiles stay inside the observed range despite open buckets.
        assert 1e-9 <= h.percentile(0.5) <= 9999.0

    def test_to_value_shape(self):
        h = LatencyHistogram("op")
        h.observe(0.01)
        h.observe(0.02)
        v = h.to_value()
        assert set(v) == {
            "count", "sum_seconds", "mean_seconds", "min_seconds",
            "max_seconds", "p50_seconds", "p95_seconds", "p99_seconds",
            "buckets",
        }
        assert v["count"] == 2
        # PR 10: raw bucket counts ride along so SLO trackers can diff
        # windows; they must agree with the digested count.
        assert sum(v["buckets"]) == 2
        assert abs(v["sum_seconds"] - 0.03) < 1e-12
        assert abs(v["mean_seconds"] - 0.015) < 1e-12


class TestRegistry:
    def test_instruments_are_idempotent(self):
        r = MetricsRegistry(enabled=True)
        assert r.counter("a") is r.counter("a")
        assert r.histogram("h") is r.histogram("h")
        assert r.gauge("g") is r.gauge("g")

    def test_disabled_registry_hands_out_null(self):
        r = MetricsRegistry(enabled=False)
        assert r.counter("a") is NULL_INSTRUMENT
        assert r.gauge("g") is NULL_INSTRUMENT
        assert r.histogram("h") is NULL_INSTRUMENT
        # The null instrument absorbs every verb without state.
        r.counter("a").inc()
        r.histogram("h").observe(1.0)
        assert r.histogram("h").percentile(0.99) == 0.0
        snap = r.snapshot()
        assert snap["enabled"] is False
        assert snap["counters"] == {}
        assert snap["histograms"] == {}

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        assert not obs_enabled()
        assert MetricsRegistry().enabled is False
        monkeypatch.setenv("REPRO_OBS", "1")
        assert obs_enabled()
        assert MetricsRegistry().enabled is True

    def test_snapshot_shape_and_version(self):
        r = MetricsRegistry(enabled=True)
        r.counter("c").inc(2)
        r.gauge("g").set(1.5)
        r.histogram("h").observe(0.01)
        snap = r.snapshot()
        assert snap["v"] == SCHEMA_VERSION
        assert snap["enabled"] is True
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["seq"] > 0

    def test_delta_cursor_filters_untouched_instruments(self):
        r = MetricsRegistry(enabled=True)
        r.counter("old").inc()
        r.histogram("h_old").observe(0.01)
        cursor = r.snapshot()["seq"]
        quiet = r.delta(cursor)
        assert quiet["counters"] == {}
        assert quiet["histograms"] == {}
        assert quiet["since"] == cursor
        r.counter("fresh").inc()
        r.counter("old").inc()  # touched again → reappears
        moved = r.delta(cursor)
        assert set(moved["counters"]) == {"fresh", "old"}
        assert moved["histograms"] == {}

    def test_delta_zero_is_full(self):
        r = MetricsRegistry(enabled=True)
        r.counter("a").inc()
        r.histogram("h").observe(0.5)
        full = r.delta(0)
        assert set(full["counters"]) == {"a"}
        assert set(full["histograms"]) == {"h"}

    def test_collectors_merge_into_snapshot(self):
        r = MetricsRegistry(enabled=True)
        r.register_collector("cache", lambda: {"hits": 3})
        assert r.snapshot()["collectors"] == {"cache": {"hits": 3}}
        assert r.delta(10**9)["collectors"] == {"cache": {"hits": 3}}

    def test_collector_errors_are_contained(self):
        r = MetricsRegistry(enabled=True)
        r.register_collector("boom", lambda: 1 / 0)
        r.register_collector("fine", lambda: 1)
        collected = r.snapshot()["collectors"]
        assert collected["fine"] == 1
        assert "ZeroDivisionError" in collected["boom"]["error"]

    def test_seq_never_aliases_across_registries(self):
        a = MetricsRegistry(enabled=True)
        b = MetricsRegistry(enabled=True)
        a.counter("x").inc()
        cursor = a.snapshot()["seq"]
        b.counter("y").inc()
        # b's update happened after a's cursor — a shared process-wide
        # sequence guarantees the delta picks it up.
        assert b.delta(cursor)["counters"] == {"y": 1}


class TestMetricsPayload:
    def test_payload_without_tracer(self):
        r = MetricsRegistry(enabled=True)
        r.counter("c").inc()
        payload = metrics_payload(r, None, since=0, max_traces=8)
        assert payload["counters"] == {"c": 1}
        assert payload["traces"] == []

    def test_payload_with_tracer_and_limit(self):
        from repro.obs.tracing import TraceBuffer, new_trace_id, start_trace

        r = MetricsRegistry(enabled=True)
        buf = TraceBuffer()
        for _ in range(5):
            with start_trace(new_trace_id(), buf, "root"):
                pass
        payload = metrics_payload(r, buf, since=0, max_traces=2)
        assert len(payload["traces"]) == 2
        # max_traces=0 means "no traces", keeping the frame small.
        assert metrics_payload(r, buf, since=0, max_traces=0)["traces"] == []


class TestDefaultRegistry:
    def test_default_is_shared(self):
        assert default_registry() is default_registry()

    def test_configure_replaces_default(self):
        original = default_registry()
        try:
            replaced = configure_default_registry(enabled=False)
            assert default_registry() is replaced
            assert replaced is not original
            assert replaced.enabled is False
        finally:
            configure_default_registry(enabled=None)
