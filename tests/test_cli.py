"""Tests for the rsse-experiments command-line interface."""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.cli import main, run_experiment


class TestArgumentHandling:
    def test_rejects_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_help_lists_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "fig5a" in out and "table2" in out


class TestFastExperimentsThroughMain:
    def test_ablation_tdag(self, capsys):
        assert main(["ablation-tdag"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 1" in out and "worst" in out

    def test_ablation_urc(self, capsys):
        assert main(["ablation-urc"]) == 0
        out = capsys.readouterr().out
        assert "urc min" in out

    def test_fig8a_with_csv(self, tmp_path: pathlib.Path, capsys):
        assert main(["fig8a", "--csv-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Query size" in out
        csv_file = tmp_path / "fig8a.csv"
        assert csv_file.exists()
        header = csv_file.read_text().splitlines()[0]
        assert header.startswith("range size,")

    def test_fig8b_renders_ms(self, capsys):
        assert main(["fig8b"]) == 0
        assert "ms" in capsys.readouterr().out


class TestRunExperimentContract:
    def test_every_fast_name_returns_text(self):
        for name in ("ablation-tdag", "ablation-urc", "fig8a", "fig8b"):
            assert run_experiment(name).strip()


class TestNetworkSubcommands:
    def test_connect_against_live_server(self, capsys):
        """The connect subcommand outsources, queries and verifies over
        a real loopback server, exiting 0 on a clean differential."""
        from repro.net import serve_in_thread
        from repro.protocol import RsseServer

        with serve_in_thread(RsseServer()) as server:
            code = main(
                [
                    "connect",
                    "--port",
                    str(server.port),
                    "--records",
                    "80",
                    "--domain",
                    "256",
                    "--queries",
                    "5",
                ]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 mismatches" in out
        assert "frames in" in out

    def test_connect_unreachable_port_fails_fast(self):
        from repro.errors import TransportError

        with pytest.raises(TransportError):
            main(["connect", "--port", "1", "--records", "10", "--queries", "1"])

    def test_serve_help_does_not_touch_sockets(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--help"])
        assert exc.value.code == 0
        assert "--max-inflight" in capsys.readouterr().out
