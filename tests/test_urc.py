"""Unit and property tests for the Uniform Range Cover.

The load-bearing property (the reason URC exists): the multiset of node
*levels* in the cover depends only on the range size, never on its
position — so token counts cannot betray where a query sits.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.covers.dyadic import Node
from repro.covers.urc import (
    canonical_level_multiset,
    uniform_range_cover,
    urc_node_count,
)


def covered_values(nodes):
    out = []
    for node in nodes:
        out.extend(range(node.lo, node.hi + 1))
    return out


class TestPaperExamples:
    def test_range_2_7_breaks_to_four_nodes(self):
        # Paper Figure 1: URC covers [2, 7] with N2, N3, N4,5, N6,7.
        assert uniform_range_cover(2, 7) == [
            Node(0, 2),
            Node(0, 3),
            Node(1, 2),
            Node(1, 3),
        ]

    def test_range_1_6_same_level_multiset(self):
        # Paper: [1, 6] is represented by the same number of nodes at the
        # same levels as [2, 7].
        levels_a = Counter(n.level for n in uniform_range_cover(2, 7))
        levels_b = Counter(n.level for n in uniform_range_cover(1, 6))
        assert levels_a == levels_b == Counter({0: 2, 1: 2})

    def test_single_value(self):
        assert uniform_range_cover(9, 9) == [Node(0, 9)]


class TestCanonicalMultiset:
    def test_r1(self):
        assert canonical_level_multiset(1) == Counter({0: 1})

    def test_r6(self):
        assert canonical_level_multiset(6) == Counter({0: 2, 1: 2})

    def test_sums_to_range_size(self):
        for size in range(1, 200):
            multiset = canonical_level_multiset(size)
            assert sum(count << lvl for lvl, count in multiset.items()) == size

    def test_every_level_below_max_present(self):
        for size in range(2, 200):
            multiset = canonical_level_multiset(size)
            for lvl in range(max(multiset)):
                assert multiset[lvl] >= 1, (size, multiset)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            canonical_level_multiset(0)

    def test_node_count_logarithmic(self):
        for size in range(1, 2000):
            assert urc_node_count(size) <= 2 * size.bit_length() + 1


class TestPositionIndependence:
    def test_exhaustive_domain_128(self):
        """For every size, every position in a 128-value domain yields the
        canonical multiset — the core URC guarantee, checked exhaustively."""
        for size in range(1, 65):
            expected = canonical_level_multiset(size)
            for lo in range(0, 128 - size + 1):
                got = Counter(n.level for n in uniform_range_cover(lo, lo + size - 1))
                assert got == expected, (size, lo)

    @given(st.integers(1, 1 << 12), st.data())
    @settings(max_examples=200)
    def test_random_positions_large_domain(self, size, data):
        lo = data.draw(st.integers(0, (1 << 20) - size))
        got = Counter(n.level for n in uniform_range_cover(lo, lo + size - 1))
        assert got == canonical_level_multiset(size)


class TestExactness:
    def test_exhaustive_small(self):
        for lo in range(32):
            for hi in range(lo, 32):
                nodes = uniform_range_cover(lo, hi)
                values = covered_values(nodes)
                assert sorted(values) == list(range(lo, hi + 1)), (lo, hi)

    @given(st.integers(0, 1 << 14), st.integers(0, 1 << 10))
    @settings(max_examples=200)
    def test_disjoint_exact_random(self, lo, width):
        hi = lo + width
        values = covered_values(uniform_range_cover(lo, hi))
        assert len(values) == len(set(values)) == hi - lo + 1
        assert min(values) == lo and max(values) == hi

    def test_sorted_left_to_right(self):
        nodes = uniform_range_cover(3, 100)
        assert all(a.hi < b.lo for a, b in zip(nodes, nodes[1:]))
