"""Unit coverage for the cluster layer: topology, router, health,
bootstrap plumbing.

The differential guarantees (cluster ≡ single server for every scheme,
recovery under kill) live in ``test_cluster_differential.py``; this file
pins the mechanics — shard-map versioning, scatter-gather correctness
against the oracle, retry exhaustion, topology application rules, and
the snapshot round-trips.
"""

from __future__ import annotations

import random
import socket

import pytest

from repro.baselines.plaintext import PlaintextRangeIndex
from repro.cluster import (
    ClusterRouter,
    ShardMap,
    ShardSpec,
    make_shard_map,
    render_health,
    shard_snapshot_path,
)
from repro.core.registry import make_scheme
from repro.errors import ClusterError, StaleTopologyError
from repro.net import NetTransport, serve_in_thread

DOMAIN = 512


def _records(seed: int, n: int = 120):
    rng = random.Random(seed)
    return [(i, rng.randrange(DOMAIN)) for i in range(n)]


def _schemes(count: int, seed: int, name: str = "logarithmic-brc"):
    return [
        make_scheme(name, DOMAIN, rng=random.Random(seed + i))
        for i in range(count)
    ]


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------


class TestShardMap:
    def test_shard_of_is_deterministic_and_in_range(self):
        smap = make_shard_map([("h", 1), ("h", 2), ("h", 3)])
        assignments = [smap.shard_of(rid) for rid in range(1000)]
        assert assignments == [smap.shard_of(rid) for rid in range(1000)]
        assert set(assignments) == {0, 1, 2}  # every shard gets work

    def test_partition_is_disjoint_and_complete(self):
        smap = make_shard_map([("h", 1), ("h", 2)])
        parts = smap.partition(range(200))
        assert sorted(rid for part in parts for rid in part) == list(range(200))
        assert all(
            smap.shard_of(rid) == shard
            for shard, part in enumerate(parts)
            for rid in part
        )

    def test_replace_bumps_version_and_keeps_handles(self):
        smap = make_shard_map([("a", 1), ("b", 2)], version=3)
        bumped = smap.replace(1, "c", 9)
        assert bumped.version == 4
        assert bumped.shards[1].host == "c"
        assert bumped.shards[1].index_id == smap.shards[1].index_id
        assert bumped.shards[0] == smap.shards[0]
        assert smap.version == 3  # original untouched (immutable maps)

    def test_json_round_trip(self):
        smap = make_shard_map([("a", 1), ("b", 2)], version=7)
        assert ShardMap.from_json(smap.to_json()) == smap

    def test_validation(self):
        with pytest.raises(ClusterError):
            ShardMap(0, ())
        with pytest.raises(ClusterError):
            ShardMap(0, (ShardSpec(1, "h", 1, 10),))  # must start at 0
        with pytest.raises(ClusterError):
            ShardMap(-1, (ShardSpec(0, "h", 1, 10),))

    def test_handle_stride_leaves_room_for_multi_index_schemes(self):
        smap = make_shard_map([("h", 1), ("h", 2)])
        gap = smap.shards[1].index_id - smap.shards[0].index_id
        assert gap >= 2  # SRC-i uploads two EDBs per shard


# ---------------------------------------------------------------------------
# Router mechanics (2 real shard servers)
# ---------------------------------------------------------------------------


@pytest.fixture
def two_shards():
    servers = [serve_in_thread(shard=f"{i}/2") for i in range(2)]
    try:
        yield servers
    finally:
        for server in servers:
            server.stop()


class TestClusterRouter:
    def test_scatter_gather_matches_oracle(self, two_shards):
        records = _records(seed=1)
        oracle = PlaintextRangeIndex(records)
        smap = make_shard_map([(s.host, s.port) for s in two_shards])
        with ClusterRouter(_schemes(2, seed=10), smap) as router:
            counts = router.outsource(records)
            assert sum(counts) == len(records) and all(counts)
            rng = random.Random(2)
            for _ in range(12):
                lo = rng.randrange(DOMAIN)
                hi = rng.randrange(lo, DOMAIN)
                assert router.query(lo, hi) == frozenset(oracle.query(lo, hi))

    def test_traced_scatter_has_per_shard_child_spans(self, two_shards):
        """Regression: scatter work runs on pool threads, which do not
        inherit the caller's contextvars — without copying the context
        into each submission, the per-shard spans silently no-op and
        the ``router.scatter`` root records no children."""
        records = _records(seed=9, n=40)
        smap = make_shard_map([(s.host, s.port) for s in two_shards])
        with ClusterRouter(_schemes(2, seed=40), smap) as router:
            router.outsource(records)
            router.query_many([(0, DOMAIN - 1)], trace_id="beadfeed00000001")
            (trace,) = router.tracer.find("beadfeed00000001")
            roots = [
                s for s in trace["spans"] if s["name"] == "router.scatter"
            ]
            kids = [s for s in trace["spans"] if s["name"] == "router.shard"]
            assert len(roots) == 1
            assert len(kids) == len(smap)  # one child per shard
            assert {k["meta"]["shard"] for k in kids} == {0, 1}
            assert all(k["depth"] > roots[0]["depth"] for k in kids)

    def test_payloads_route_to_owning_shards(self, two_shards):
        records = _records(seed=3, n=40)
        payloads = {rid: b"doc-%d" % rid for rid, _ in records}
        smap = make_shard_map([(s.host, s.port) for s in two_shards])
        with ClusterRouter(_schemes(2, seed=20), smap) as router:
            router.outsource(records, payloads=payloads)
            ids = sorted(router.query(0, DOMAIN - 1))
            assert router.fetch_payloads(ids) == payloads

    def test_health_view(self, two_shards):
        records = _records(seed=4, n=60)
        smap = make_shard_map([(s.host, s.port) for s in two_shards])
        with ClusterRouter(_schemes(2, seed=30), smap) as router:
            router.outsource(records)
            router.query(0, 100)
            health = router.health()
            assert health["reachable"] == 2
            assert health["unreachable_shards"] == []
            assert health["totals"]["stored_bytes"] > 0
            assert health["totals"]["indexes"] == 2
            assert [s["label"] for s in health["shards"]] == ["0/2", "1/2"]
            assert all(
                "inflight_by_index" in s for s in health["shards"]
            )
            assert 0.0 <= health["exec_cache_hit_rate"] <= 1.0
            rendered = render_health(health)
            assert "2/2 shards reachable" in rendered

    def test_health_reports_dead_shard_without_raising(self, two_shards):
        records = _records(seed=5, n=60)
        smap = make_shard_map([(s.host, s.port) for s in two_shards])
        with ClusterRouter(
            _schemes(2, seed=40), smap, retries=0, backoff_s=0.01
        ) as router:
            router.outsource(records)
            two_shards[1].stop()
            health = router.health()
            assert health["unreachable_shards"] == [1]
            assert "DOWN" in render_health(health)

    def test_dead_shard_exhausts_retries_with_cluster_error(self):
        # A map pointing shard 1 at a never-listening port: the whole
        # batch must fail loudly (naming the shard), never return the
        # partial answer of the healthy shard.
        server = serve_in_thread()
        try:
            smap = make_shard_map(
                [(server.host, server.port), ("127.0.0.1", _free_port())]
            )
            with ClusterRouter(
                _schemes(2, seed=50), smap, retries=1, backoff_s=0.01,
                transport_factory=lambda spec: NetTransport(
                    spec.host, spec.port, retries=0, timeout_s=3.0
                ),
            ) as router:
                with pytest.raises(ClusterError, match="shard 1"):
                    router.outsource(_records(seed=6, n=40))
        finally:
            server.stop()

    def test_retire_drops_every_shard_index(self, two_shards):
        records = _records(seed=7, n=40)
        smap = make_shard_map([(s.host, s.port) for s in two_shards])
        with ClusterRouter(_schemes(2, seed=60), smap) as router:
            router.outsource(records)
            router.retire()
        for server in two_shards:
            assert server.server.core.index_count() == 0

    def test_scheme_count_must_match_shard_count(self, two_shards):
        smap = make_shard_map([(s.host, s.port) for s in two_shards])
        with pytest.raises(ClusterError):
            ClusterRouter(_schemes(3, seed=70), smap)


class TestApplyTopology:
    def _router(self, two_shards):
        smap = make_shard_map([(s.host, s.port) for s in two_shards])
        return ClusterRouter(_schemes(2, seed=80), smap)

    def test_version_regression_refused(self, two_shards):
        with self._router(two_shards) as router:
            newer = router.shard_map.replace(0, "x", 1)
            stale = router.shard_map
            router.apply_topology(newer)
            with pytest.raises(StaleTopologyError):
                router.apply_topology(stale)

    def test_same_version_conflict_refused(self, two_shards):
        with self._router(two_shards) as router:
            conflicting = ShardMap(
                router.shard_map.version,
                tuple(
                    ShardSpec(s.shard, "elsewhere", s.port, s.index_id)
                    for s in router.shard_map.shards
                ),
            )
            with pytest.raises(StaleTopologyError):
                router.apply_topology(conflicting)

    def test_same_map_is_a_no_op(self, two_shards):
        with self._router(two_shards) as router:
            router.apply_topology(router.shard_map)

    def test_shard_count_change_refused(self, two_shards):
        with self._router(two_shards) as router:
            bigger = ShardMap(
                router.shard_map.version + 1,
                router.shard_map.shards
                + (ShardSpec(2, "h", 1, 999_000),),
            )
            with pytest.raises(ClusterError, match="re-outsource"):
                router.apply_topology(bigger)


class TestSnapshots:
    def test_from_snapshots_reattaches_without_reupload(
        self, two_shards, tmp_path
    ):
        records = _records(seed=8)
        oracle = PlaintextRangeIndex(records)
        smap = make_shard_map([(s.host, s.port) for s in two_shards])
        with ClusterRouter(_schemes(2, seed=90), smap) as router:
            router.outsource(records, snapshot_dir=tmp_path)
        assert shard_snapshot_path(tmp_path, 0).exists()
        assert shard_snapshot_path(tmp_path, 1).exists()
        def upload_ops(server):
            ops = server.server.stats.op_seconds
            return sum(
                ops.get(name, [0, 0.0])[0]
                for name in ("upload-index", "upload-records",
                             "upload-payloads")
            )

        uploads_before = [upload_ops(s) for s in two_shards]
        # A fresh owner process: same snapshots, zero re-uploading.
        with ClusterRouter.from_snapshots(tmp_path, smap) as revived:
            assert revived.query(10, 400) == frozenset(oracle.query(10, 400))
        assert [upload_ops(s) for s in two_shards] == uploads_before
