"""Active observability: trace sampling, flight recorder, event log.

The tail-based claim under test: a slow query's full span tree is
retained even when the sampling coin flip would have dropped the
trace — the recorder, not the sampler, decides what survives.
"""

import json
import random

import pytest

import repro.protocol.messages as msg
from repro.core.registry import make_scheme
from repro.obs.events import EventLog
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import FlightRecorder, TraceSampler, start_trace
from repro.protocol import RemoteRangeClient, RsseServer
from repro.errors import TokenError


class HeadsSampler(TraceSampler):
    """Deterministic: every flip is heads (sampled)."""

    def __init__(self):
        super().__init__(rate=2)

    def decide(self):
        return True


class TailsSampler(TraceSampler):
    """Deterministic: active, but every flip is tails (dropped)."""

    def __init__(self):
        super().__init__(rate=2)

    def decide(self):
        return False


def _loaded_server(domain=1 << 8, records=40, **kwargs):
    server = RsseServer(**kwargs)
    server.metrics_registry = MetricsRegistry(enabled=True)
    scheme = make_scheme(
        "constant-brc",
        domain,
        rng=random.Random(5),
        intersection_policy="allow",
    )
    client = RemoteRangeClient(scheme, server.handle, rng=random.Random(6))
    client.outsource([(i, i % domain) for i in range(records)])
    return server, client


class TestTraceSampler:
    def test_rate_semantics(self):
        assert not TraceSampler(0).active
        assert TraceSampler(1).decide()
        off = TraceSampler(0)
        assert not off.decide()

    def test_rate_n_is_one_in_n(self):
        sampler = TraceSampler(4, rng=random.Random(11))
        kept = sum(1 for _ in range(4000) if sampler.decide())
        assert 800 < kept < 1200  # ~1000 expected

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "25")
        assert TraceSampler().rate == 25
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "garbage")
        assert TraceSampler().rate == 0

    def test_sampled_query_lands_in_tracer(self):
        server, client = _loaded_server(trace_sampler=HeadsSampler())
        client.query(3, 90)
        traces = server.tracer.snapshot()
        assert traces
        assert any(
            span["name"] == "server.handle"
            for trace in traces
            for span in trace["spans"]
        )
        assert server.metrics_registry.counter("trace.sampled").value >= 1

    def test_dropped_query_leaves_no_trace(self):
        server, client = _loaded_server(trace_sampler=TailsSampler())
        client.query(3, 90)
        assert len(server.tracer) == 0
        assert server.metrics_registry.counter("trace.dropped").value >= 1


class TestFlightRecorder:
    def test_threshold_and_ring(self):
        recorder = FlightRecorder(capacity=2, threshold_s=0.01)
        assert recorder.armed
        registry = MetricsRegistry(enabled=True)
        recorder.registry = registry
        buffer = []

        def observed(elapsed, op="search"):
            with start_trace("t" * 16, None, "server.handle") as state:
                pass
            recorder.consider(op, state, elapsed)

        observed(0.001)  # under the bar
        assert len(recorder) == 0
        for i in range(3):
            observed(0.5 + i)
        assert len(recorder) == 2  # ring dropped the oldest
        assert recorder.evicted == 1
        captures = recorder.snapshot()
        assert [c["elapsed_s"] for c in captures] == pytest.approx([1.5, 2.5])
        assert all(c["reason"] == "absolute" for c in captures)
        assert registry.counter("slowlog.captured").value == 3

    def test_p99_threshold_needs_min_samples(self):
        registry = MetricsRegistry(enabled=True)
        recorder = FlightRecorder(
            p99_factor=2.0, min_samples=5, registry=registry
        )
        assert recorder.armed
        # Until min_samples observations exist there is no live bar.
        assert recorder.threshold_for("search") is None
        hist = registry.histogram("slowlog.latency.search")
        for _ in range(5):
            hist.observe(0.01)
        bar = recorder.threshold_for("search")
        assert bar is not None and bar > 0.01

    def test_unarmed_by_default(self):
        assert not FlightRecorder().armed

    def test_slow_query_survives_tails_sampling(self):
        """The headline behavior: sampler says drop, recorder keeps it
        anyway — with the full span tree."""
        server, client = _loaded_server(
            trace_sampler=TailsSampler(),
            flight=FlightRecorder(threshold_s=0.0),  # everything is slow
        )
        client.query(3, 90)
        assert len(server.tracer) == 0  # sampling really did drop it
        captures = server.flight.snapshot()
        assert captures
        top = captures[0]
        assert top["sampled"] is False
        names = {span["name"] for span in top["spans"]}
        assert "server.handle" in names
        assert "storage.get_many" in names
        # The capture narrates itself into the event log too.
        kinds = [record["kind"] for record in server.events.tail()]
        assert "slowlog.capture" in kinds

    def test_inert_when_unarmed_and_unsampled(self):
        server, client = _loaded_server()  # defaults: sampler off
        client.query(3, 90)
        assert len(server.tracer) == 0
        assert len(server.flight) == 0


class TestEventLog:
    def test_ring_and_counters(self):
        registry = MetricsRegistry(enabled=True)
        log = EventLog(capacity=3, registry=registry)
        for i in range(5):
            log.emit("test.event", index=i)
        assert len(log) == 3
        assert log.evicted == 2
        assert log.emitted == 5
        assert [record["index"] for record in log.tail()] == [2, 3, 4]
        assert log.tail(limit=1)[0]["index"] == 4
        assert registry.counter("events.emitted").value == 5

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=str(path))
        log.emit("server.start", port=1234)
        log.emit("server.stop")
        log.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["kind"] for line in lines] == [
            "server.start", "server.stop",
        ]
        assert lines[0]["port"] == 1234
        assert all("ts_s" in line for line in lines)

    def test_write_errors_never_raise(self, tmp_path):
        log = EventLog(path=str(tmp_path))  # a directory: open() fails
        record = log.emit("test.event")
        assert record["kind"] == "test.event"  # ring still took it
        assert log.write_errors == 1

    def test_server_lifecycle_events(self):
        server, client = _loaded_server()
        kinds = [record["kind"] for record in server.events.tail()]
        assert "store.open" not in kinds  # legacy upload, not a store
        server.handle(
            msg.StoreOpenRequest(
                index_id=9, schemes=("logarithmic-brc",), domain_size=1 << 8
            ).to_frame()
        )
        server.handle(msg.DropIndex(index_id=9).to_frame())
        kinds = [record["kind"] for record in server.events.tail()]
        assert "store.open" in kinds
        assert "store.drop" in kinds


class TestMetricsRequestCodec:
    def test_legacy_frame_is_byte_identical(self):
        """Extending the frame must not change what old fields emit."""
        frame = msg.MetricsRequest(since=7, max_traces=3).to_frame()
        tag, body = msg.parse_frame(frame)
        assert tag == msg.TAG_METRICS_REQUEST
        assert len(body) == 12
        assert body == (7).to_bytes(8, "big") + (3).to_bytes(4, "big")

    def test_extended_round_trip(self):
        request = msg.MetricsRequest(
            since=7, max_traces=3, max_slow=5, boot="ab" * 8
        )
        tag, body = msg.parse_frame(request.to_frame())
        assert len(body) == 24
        parsed = msg.MetricsRequest.from_body(body)
        assert parsed == request

    def test_zero_boot_decodes_as_unset(self):
        request = msg.MetricsRequest(since=0, max_traces=0, max_slow=2)
        parsed = msg.MetricsRequest.from_body(
            msg.parse_frame(request.to_frame())[1]
        )
        assert parsed.boot == ""
        assert parsed.max_slow == 2

    def test_bad_bodies_rejected(self):
        with pytest.raises(TokenError):
            msg.MetricsRequest.from_body(b"\x00" * 13)
        with pytest.raises(TokenError):
            # Boot ids are validated at encode time (frozen dataclass).
            msg.MetricsRequest(
                since=0, max_traces=0, boot="not-hex-not-hex!"
            ).to_frame()
