"""SLO tracker tests: objective parsing, burn-rate states, fleet rollup.

Every latency evaluation here drives the tracker with hand-built
registry snapshots and an injected clock — the states must be a pure
function of (objectives, samples, time), or alerting is untestable.
"""

import pytest

from repro.cluster.health import render_alerts, rollup_alerts
from repro.obs.events import EventLog
from repro.obs.registry import LATENCY_BOUNDS, MetricsRegistry
from repro.obs.slo import (
    STATE_OK,
    STATE_PAGE,
    STATE_WARN,
    FleetSlos,
    SloTracker,
    parse_objective,
    worst_state,
)


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _snapshot_with_latency(registry_factory, op, observations):
    """A real registry snapshot carrying one op histogram."""
    registry = registry_factory()
    hist = registry.histogram(f"op.{op}")
    for seconds in observations:
        hist.observe(seconds)
    return registry.snapshot()


class TestParseObjective:
    def test_latency_forms(self):
        obj = parse_objective("p99(op.multi-search) < 100ms over 5m")
        assert obj.kind == "latency"
        assert obj.metric == "op.multi-search"
        assert obj.quantile == pytest.approx(0.99)
        assert obj.bound == pytest.approx(0.1)
        assert obj.window_s == pytest.approx(300.0)
        # Default short window: window/6 with a 10s floor.
        assert obj.short_s == pytest.approx(50.0)

    def test_named_objective_and_units(self):
        obj = parse_objective("tail: p50(op.search) < 250us over 30s")
        assert obj.name == "tail"
        assert obj.bound == pytest.approx(250e-6)
        assert obj.window_s == pytest.approx(30.0)
        assert obj.short_s == pytest.approx(10.0)  # floor

    def test_explicit_short_window(self):
        obj = parse_objective("p99(op.x) < 1s over 10m/20s")
        assert obj.window_s == pytest.approx(600.0)
        assert obj.short_s == pytest.approx(20.0)

    def test_error_rate_and_unreachable(self):
        err = parse_objective("errors: error_rate < 2% over 1m")
        assert err.kind == "error-rate"
        assert err.bound == pytest.approx(0.02)
        fleet = parse_objective("fleet: unreachable == 0")
        assert fleet.kind == "unreachable"

    @pytest.mark.parametrize(
        "text",
        [
            "p99(op.x) < 100 over 5m",  # missing unit
            "p99 op.x < 100ms over 5m",  # missing parens
            "latency is fine",
            "p200(op.x) < 1ms over 5m",  # quantile > 1
            "",
        ],
    )
    def test_garbage_rejected(self, text):
        with pytest.raises(ValueError):
            parse_objective(text)

    def test_worst_state(self):
        assert worst_state([]) == STATE_OK
        assert worst_state([STATE_OK, STATE_WARN]) == STATE_WARN
        assert worst_state([STATE_WARN, STATE_PAGE, STATE_OK]) == STATE_PAGE


class TestLatencyStates:
    def _tracker(self, clock, objective="p99(op.search) < 100ms over 1m"):
        return SloTracker([objective], clock=clock)

    def test_fast_queries_stay_ok(self):
        clock = FakeClock()
        tracker = self._tracker(clock)
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("op.search")
        for _ in range(90):
            clock.advance(1.0)
            hist.observe(0.002)
            tracker.observe(registry.snapshot())
        [result] = tracker.evaluate()
        assert result["state"] == STATE_OK
        assert result["burn_long"] == pytest.approx(0.0)

    def test_slow_queries_page(self):
        clock = FakeClock()
        tracker = self._tracker(clock)
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("op.search")
        for _ in range(90):
            clock.advance(1.0)
            hist.observe(0.5)  # every query blows the 100ms bound
            tracker.observe(registry.snapshot())
        [result] = tracker.evaluate()
        assert result["state"] == STATE_PAGE
        # All-bad traffic burns at 1/(1-0.99) = 100x budget.
        assert result["burn_long"] == pytest.approx(100.0, rel=0.01)
        assert result["burn_short"] == pytest.approx(100.0, rel=0.01)

    def test_long_only_breach_warns_not_pages(self):
        """Paging needs BOTH windows burning; a recovered incident
        (long window still dirty, short window clean) only warns."""
        clock = FakeClock()
        tracker = self._tracker(clock)
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("op.search")
        # 40s of all-bad traffic, then 20s of clean traffic: the 1m
        # window still sees ~2/3 bad, the 10s short window sees none.
        for _ in range(40):
            clock.advance(1.0)
            hist.observe(0.5)
            tracker.observe(registry.snapshot())
        for _ in range(20):
            clock.advance(1.0)
            hist.observe(0.001)
            tracker.observe(registry.snapshot())
        [result] = tracker.evaluate()
        assert result["state"] == STATE_WARN
        assert result["burn_long"] > 1.0
        assert result["burn_short"] == pytest.approx(0.0)

    def test_counter_regression_treated_as_fresh(self):
        """A restarted shard's smaller histogram must not produce
        negative deltas — its counts are taken as all-new."""
        clock = FakeClock()
        tracker = self._tracker(clock, "p99(op.search) < 100ms over 1m")
        big = MetricsRegistry(enabled=True)
        for _ in range(50):
            big.histogram("op.search").observe(0.5)
        clock.advance(1.0)
        tracker.observe(big.snapshot())
        # Restart: the histogram comes back smaller than before (a
        # negative raw delta) while slow traffic keeps flowing.
        small = MetricsRegistry(enabled=True)
        for _ in range(59):
            clock.advance(1.0)
            small.histogram("op.search").observe(0.5)
            tracker.observe(small.snapshot())
        [result] = tracker.evaluate()
        assert result["state"] == STATE_PAGE
        assert result["burn_long"] > 0.0

    def test_carry_forward_when_metric_absent(self):
        """Delta payloads omit untouched instruments; an absent
        histogram means 'no new observations', not 'metric vanished'."""
        clock = FakeClock()
        tracker = self._tracker(clock)
        registry = MetricsRegistry(enabled=True)
        registry.histogram("op.search").observe(0.001)
        clock.advance(1.0)
        tracker.observe(registry.snapshot())
        for _ in range(60):
            clock.advance(1.0)
            tracker.observe({"counters": {}, "histograms": {}})
        [result] = tracker.evaluate()
        # The carried-forward counts mean zero *new* observations in
        # the window — quiet, not breached.
        assert result["state"] == STATE_OK
        assert result["samples"] == 0


class TestErrorRateAndUnreachable:
    def test_error_rate_pages(self):
        clock = FakeClock()
        tracker = SloTracker(["error_rate < 5% over 1m"], clock=clock)
        registry = MetricsRegistry(enabled=True)
        for _ in range(60):
            clock.advance(1.0)
            registry.counter("net.frames").inc(10)
            registry.counter("net.errors").inc(5)  # 50% error rate
            tracker.observe(registry.snapshot())
        [result] = tracker.evaluate()
        assert result["state"] == STATE_PAGE
        assert result["value"] == pytest.approx(0.5, rel=0.01)

    def test_unreachable_debounce(self):
        """One missed probe warns; two consecutive misses page —
        a single dropped poll must not page an on-call."""
        clock = FakeClock()
        tracker = SloTracker(["unreachable == 0"], clock=clock)
        tracker.observe({}, unreachable=0)
        clock.advance(1.0)
        tracker.observe({}, unreachable=1)
        [result] = tracker.evaluate()
        assert result["state"] == STATE_WARN
        clock.advance(1.0)
        tracker.observe({}, unreachable=1)
        [result] = tracker.evaluate()
        assert result["state"] == STATE_PAGE
        clock.advance(1.0)
        tracker.observe({}, unreachable=0)
        [result] = tracker.evaluate()
        assert result["state"] == STATE_OK


class TestTransitions:
    def test_transition_emits_event_and_metrics(self):
        clock = FakeClock()
        events = EventLog(capacity=16)
        registry = MetricsRegistry(enabled=True)
        tracker = SloTracker(
            ["p99(op.search) < 100ms over 1m"],
            events=events,
            registry=registry,
            clock=clock,
        )
        source = MetricsRegistry(enabled=True)
        hist = source.histogram("op.search")
        for _ in range(30):
            clock.advance(1.0)
            hist.observe(0.5)
            tracker.observe(source.snapshot())
        tracker.evaluate()
        kinds = [record["kind"] for record in events.tail()]
        assert "alert" in kinds
        assert registry.counter("slo.transitions").value >= 1
        assert registry.counter("slo.evaluations").value >= 1
        # The per-objective state gauge tracks the live level (the
        # auto-derived name for an unnamed latency objective).
        assert registry.gauge("slo.state.p99-op.search").value == 2  # page

    def test_duplicate_objective_names_rejected(self):
        with pytest.raises(ValueError):
            SloTracker(
                ["same: unreachable == 0", "same: error_rate < 1% over 1m"]
            )


class TestFleetRollup:
    def _evaluation(self):
        """Two shards, one paging, plus a fleet objective."""
        clock = FakeClock()
        fleet = FleetSlos(
            ["lat: p99(op.search) < 100ms over 1m", "up: unreachable == 0"],
            clock=clock,
        )
        fast = MetricsRegistry(enabled=True)
        slow = MetricsRegistry(enabled=True)
        for _ in range(60):
            clock.advance(1.0)
            fast.histogram("op.search").observe(0.001)
            slow.histogram("op.search").observe(0.5)
            fleet.observe_sample(
                {
                    "sampled_at_s": clock(),
                    "shard_count": 2,
                    "reachable": 2,
                    "shards": [
                        {"address": "a:1", "reachable": True,
                         "metrics": fast.snapshot()},
                        {"address": "b:2", "reachable": True,
                         "metrics": slow.snapshot()},
                    ],
                }
            )
        return fleet.evaluate()

    def test_worst_shard_wins_and_is_attributed(self):
        doc = rollup_alerts(self._evaluation())
        assert doc["worst"] == STATE_PAGE
        by_name = {alert["name"]: alert for alert in doc["alerts"]}
        lat = by_name["lat"]
        assert lat["state"] == STATE_PAGE
        assert lat["worst_shard"] == "b:2"
        assert lat["shards"] == {"a:1": STATE_OK, "b:2": STATE_PAGE}
        assert by_name["up"]["state"] == STATE_OK

    def test_render_alerts_lines(self):
        doc = rollup_alerts(self._evaluation())
        text = render_alerts(doc)
        assert "[PAGE] lat:" in text
        assert "worst shard b:2" in text
        assert "[  OK] up:" in text
        assert render_alerts({"alerts": []}).startswith("slo: no objectives")
