"""Stateful property testing: hypothesis drives the system like a user.

Two rule-based machines:

- ``UpdateMachine`` — random batches of inserts/deletes/modifies flow
  through the LSM manager while a dict model tracks the truth; every
  step's range query must agree.
- ``SchemeMachine`` — builds/queries schemes with interleaved snapshot
  round-trips, checking the oracle at each step.
"""

from __future__ import annotations

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.registry import make_scheme
from repro.io import dump_scheme, restore_scheme
from repro.updates import BatchUpdateManager, delete, insert, modify

DOMAIN = 256


class UpdateMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        seeder = random.Random(97)
        self.manager = BatchUpdateManager(
            lambda: make_scheme(
                "logarithmic-brc",
                DOMAIN,
                rng=random.Random(seeder.randrange(2**62)),
            ),
            consolidation_step=2,
            rng=random.Random(5),
        )
        self.model: dict[int, int] = {}
        self.next_id = 0

    @rule(values=st.lists(st.integers(0, DOMAIN - 1), min_size=1, max_size=5))
    def insert_batch(self, values):
        ops = []
        for value in values:
            ops.append(insert(self.next_id, value))
            self.model[self.next_id] = value
            self.next_id += 1
        self.manager.apply_batch(ops)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_one(self, data):
        victim = data.draw(st.sampled_from(sorted(self.model)))
        self.manager.apply_batch([delete(victim, self.model.pop(victim))])

    @precondition(lambda self: self.model)
    @rule(data=st.data(), new_value=st.integers(0, DOMAIN - 1))
    def modify_one(self, data, new_value):
        victim = data.draw(st.sampled_from(sorted(self.model)))
        self.manager.apply_batch(modify(victim, self.model[victim], new_value))
        self.model[victim] = new_value

    @precondition(lambda self: self.manager.active_indexes > 0)
    @invariant()
    def query_agrees_with_model(self):
        lo, hi = 60, 199
        expected = {i for i, v in self.model.items() if lo <= v <= hi}
        assert self.manager.query(lo, hi).ids == expected

    @precondition(lambda self: self.manager.active_indexes > 0)
    @invariant()
    def full_domain_agrees(self):
        assert self.manager.query(0, DOMAIN - 1).ids == set(self.model)


class SchemeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.scheme = None
        self.records: dict[int, int] = {}

    @initialize(
        values=st.lists(st.integers(0, DOMAIN - 1), min_size=1, max_size=30),
        name=st.sampled_from(
            ["logarithmic-brc", "logarithmic-src", "logarithmic-src-i"]
        ),
    )
    def build(self, values, name):
        self.records = dict(enumerate(values))
        self.scheme = make_scheme(name, DOMAIN, rng=random.Random(3))
        self.scheme.build_index(sorted(self.records.items()))

    @rule(a=st.integers(0, DOMAIN - 1), b=st.integers(0, DOMAIN - 1))
    def query(self, a, b):
        lo, hi = min(a, b), max(a, b)
        expected = {i for i, v in self.records.items() if lo <= v <= hi}
        assert self.scheme.query(lo, hi).ids == expected

    @rule()
    def snapshot_round_trip(self):
        self.scheme = restore_scheme(dump_scheme(self.scheme))

    @invariant()
    def size_stable(self):
        if self.scheme is not None:
            assert self.scheme.size == len(self.records)


TestUpdateMachine = UpdateMachine.TestCase
TestUpdateMachine.settings = settings(
    max_examples=12, stateful_step_count=8, deadline=None
)
TestSchemeMachine = SchemeMachine.TestCase
TestSchemeMachine.settings = settings(
    max_examples=12, stateful_step_count=8, deadline=None
)
