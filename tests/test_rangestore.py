"""Tests for the RangeStore facade (scheme + updates + backend)."""

from __future__ import annotations

import random

import pytest

from repro import RangeStore, SqliteBackend
from repro.errors import IndexStateError, IntegrityError


def oracle(live: "dict[int, int]", lo: int, hi: int) -> "frozenset[int]":
    return frozenset(rid for rid, v in live.items() if lo <= v <= hi)


@pytest.fixture
def populated():
    store = RangeStore.open(
        "logarithmic-src-i", domain_size=1 << 10, rng=random.Random(7)
    )
    rng = random.Random(3)
    live = {i: rng.randrange(1 << 10) for i in range(120)}
    store.insert_many(live.items())
    return store, live


class TestLifecycle:
    def test_insert_search(self, populated):
        store, live = populated
        for lo, hi in [(0, 1023), (100, 400), (512, 512)]:
            assert store.search(lo, hi).ids == oracle(live, lo, hi)

    def test_delete(self, populated):
        store, live = populated
        victim = 17
        store.delete(victim, live[victim])
        del live[victim]
        assert store.search(0, 1023).ids == oracle(live, 0, 1023)

    def test_writes_buffer_until_flush(self, populated):
        store, live = populated
        before = store.active_indexes  # first search flushes
        assert store.pending_ops == len(live) and before == 0
        store.flush()
        assert store.pending_ops == 0 and store.active_indexes >= 1

    def test_query_alias(self, populated):
        store, live = populated
        assert store.query(0, 1023).ids == store.search(0, 1023).ids

    def test_outcome_carries_cost_fields(self, populated):
        store, _ = populated
        outcome = store.search(0, 1023)
        assert outcome.response_bytes > 0
        assert outcome.refine_seconds >= 0.0

    def test_default_scheme(self):
        store = RangeStore.open(domain_size=64)
        assert store.scheme_name == "logarithmic-src-i"


@pytest.mark.parametrize("file_backed", [False, True], ids=["memory", "sqlite"])
class TestSaveLoadRoundTrip:
    def test_insert_query_save_load_query(self, tmp_path, file_backed, populated):
        store, live = populated
        before = store.search(0, 1023).ids
        path = tmp_path / "store.rsse"
        store.save(path, passphrase="s3cret")
        backend = SqliteBackend(tmp_path / "edb.sqlite") if file_backed else None
        reopened = RangeStore.load(
            path, passphrase="s3cret", backend=backend, rng=random.Random(11)
        )
        assert reopened.search(0, 1023).ids == before == oracle(live, 0, 1023)
        # The reopened store stays fully updatable.
        reopened.insert(10_000, 5)
        reopened.delete(0, live[0])
        live[10_000] = 5
        del live[0]
        assert reopened.search(0, 1023).ids == oracle(live, 0, 1023)
        reopened.close()

    def test_wrong_passphrase_rejected(self, tmp_path, file_backed, populated):
        store, _ = populated
        path = tmp_path / "store.rsse"
        store.save(path, passphrase="right")
        with pytest.raises(IntegrityError):
            RangeStore.load(path, passphrase="wrong")


class TestOnBackendFromTheStart:
    def test_second_store_on_held_backend_refused(self, tmp_path):
        """Two stores on one raw backend would clobber each other."""
        backend = SqliteBackend(tmp_path / "edb.sqlite")
        first = RangeStore.open(
            "logarithmic-brc", domain_size=64, backend=backend, rng=random.Random(1)
        )
        first.insert(7, 7)
        first.flush()
        with pytest.raises(IndexStateError):
            RangeStore.open("logarithmic-brc", domain_size=64, backend=backend)

    def test_reopen_checkpoint_into_same_backend(self, tmp_path):
        """load() deliberately adopts (and replaces) a held backend —
        the restart flow a persistent backend exists for."""
        db = tmp_path / "edb.sqlite"
        store = RangeStore.open(
            "logarithmic-brc",
            domain_size=64,
            backend=SqliteBackend(db),
            rng=random.Random(1),
        )
        store.insert(7, 7)
        checkpoint = tmp_path / "c.rsse"
        store.save(checkpoint)
        store.close()
        reopened = RangeStore.load(
            checkpoint, backend=SqliteBackend(db), rng=random.Random(2)
        )
        assert reopened.search(0, 63).ids == frozenset({7})
        reopened.close()

    def test_sqlite_hosted_store(self, tmp_path):
        backend = SqliteBackend(tmp_path / "edb.sqlite")
        with RangeStore.open(
            "logarithmic-brc",
            domain_size=256,
            backend=backend,
            rng=random.Random(5),
        ) as store:
            store.insert_many((i, i % 256) for i in range(80))
            assert store.search(10, 20).ids == frozenset(
                i for i in range(80) if 10 <= i % 256 <= 20
            )
            # The EDBs really live in the SQLite file.
            assert any(ns.startswith("scheme/") for ns in backend.namespaces())


class TestGarbage:
    def test_not_a_store_snapshot(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"definitely not a snapshot")
        with pytest.raises(IntegrityError):
            RangeStore.load(path)
