"""Cluster ≡ single server, for every wire-capable scheme.

The cluster contract: a 2-shard `ClusterRouter` returns *exactly* the
result set a single `RemoteRangeClient` over one server returns for the
same records and ranges — per scheme, per query, as frozensets of
record ids.  And the contract survives a shard dying mid-run: the
transport's reconnect-and-retry (same port restart) and the router's
bootstrap path (snapshot → fresh node on a new port → topology bump)
must both restore byte-identical answers.
"""

from __future__ import annotations

import random

import pytest

from repro import make_scheme
from repro.baselines.plaintext import PlaintextRangeIndex
from repro.cluster import (
    ClusterRouter,
    bootstrap_shard,
    make_shard_map,
    shard_snapshot_path,
)
from repro.errors import StaleTopologyError
from repro.net import NetTransport, serve_in_thread
from repro.protocol import RemoteRangeClient

#: Every wire-capable scheme (PB's Bloom tree has no EDB).
REMOTE_SCHEMES = (
    "quadratic",
    "constant-brc",
    "constant-urc",
    "logarithmic-brc",
    "logarithmic-urc",
    "logarithmic-src",
    "logarithmic-src-i",
)


def _domain(name: str) -> int:
    # Quadratic's O(n·m²) build cost wants a small domain.
    return 64 if name == "quadratic" else 128


def _make(name: str, seed: int):
    kwargs = (
        {"intersection_policy": "allow"} if name.startswith("constant") else {}
    )
    return make_scheme(name, _domain(name), rng=random.Random(seed), **kwargs)


def _dataset(name: str, n: int = 110):
    rng = random.Random(17)
    domain = _domain(name)
    return [(i, rng.randrange(domain)) for i in range(n)]


def _ranges(name: str, count: int = 10):
    rng = random.Random(23)
    domain = _domain(name)
    out = []
    for _ in range(count):
        lo = rng.randrange(domain)
        out.append((lo, rng.randrange(lo, domain)))
    return out


def _single_server_reference(name: str, records, ranges):
    """The ground truth: one scheme, one server, one client."""
    with serve_in_thread() as server:
        with NetTransport("127.0.0.1", server.port) as transport:
            client = RemoteRangeClient(
                _make(name, seed=900), transport, rng=random.Random(901)
            )
            client.outsource(records)
            return [client.query(lo, hi) for lo, hi in ranges]


@pytest.mark.parametrize("name", REMOTE_SCHEMES)
def test_two_shard_cluster_matches_single_server(name):
    records = _dataset(name)
    ranges = _ranges(name)
    reference = _single_server_reference(name, records, ranges)
    oracle = PlaintextRangeIndex(records)
    # The reference itself is sound (guards against a vacuous pass).
    for (lo, hi), want in zip(ranges, reference):
        assert want == frozenset(oracle.query(lo, hi))

    servers = [serve_in_thread(shard=f"{i}/2") for i in range(2)]
    try:
        smap = make_shard_map([(s.host, s.port) for s in servers])
        with ClusterRouter(
            [_make(name, seed=910 + i) for i in range(2)], smap
        ) as router:
            router.outsource(records)
            assert router.query_many(ranges) == reference
    finally:
        for server in servers:
            server.stop()


@pytest.mark.parametrize("name", REMOTE_SCHEMES)
def test_results_survive_shard_kill_and_retry(name):
    """Kill shard 0's server between batches and restart it on the same
    port with the same storage core (a crashed process coming back on
    its durable state): the pooled transport reconnects underneath the
    router and the answers stay identical — no topology change, no
    client-visible failure."""
    records = _dataset(name)
    ranges = _ranges(name)
    reference = _single_server_reference(name, records, ranges)

    servers = [serve_in_thread(shard=f"{i}/2") for i in range(2)]
    try:
        smap = make_shard_map([(s.host, s.port) for s in servers])
        with ClusterRouter(
            [_make(name, seed=920 + i) for i in range(2)], smap
        ) as router:
            router.outsource(records)
            assert router.query_many(ranges) == reference

            victim = servers[0]
            port, core = victim.port, victim.server.core
            victim.stop()
            servers[0] = serve_in_thread(core, port=port, shard="0/2")

            assert router.query_many(ranges) == reference
    finally:
        for server in servers:
            server.stop()


def test_bootstrap_replaces_dead_shard_on_new_port(tmp_path):
    """Full node-replacement drill: shard 0 dies for good, a fresh empty
    server comes up on a *new* port, `bootstrap_shard` replays the
    owner's snapshot into it, and `apply_topology` swaps the lane —
    answers identical before and after, stale maps refused."""
    name = "logarithmic-brc"
    records = _dataset(name)
    ranges = _ranges(name)
    reference = _single_server_reference(name, records, ranges)

    servers = [serve_in_thread(shard=f"{i}/2") for i in range(2)]
    replacement = None
    try:
        smap = make_shard_map([(s.host, s.port) for s in servers])
        with ClusterRouter(
            [_make(name, seed=930 + i) for i in range(2)],
            smap,
            retries=1,
            backoff_s=0.01,
        ) as router:
            router.outsource(records, snapshot_dir=tmp_path)
            assert router.query_many(ranges) == reference

            servers[0].stop()
            replacement = serve_in_thread(shard="0/2")
            new_map = router.shard_map.replace(
                0, replacement.host, replacement.port
            )
            restored = bootstrap_shard(
                shard_snapshot_path(tmp_path, 0), new_map.shards[0]
            )
            assert restored > 0
            router.apply_topology(new_map)
            assert router.query_many(ranges) == reference

            # The pre-failure map is now stale and must be refused.
            with pytest.raises(StaleTopologyError):
                router.apply_topology(smap)
    finally:
        for server in servers[1:]:
            server.stop()
        if replacement is not None:
            replacement.stop()
