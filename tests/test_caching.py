"""Tests for the Constant-scheme query cache (the paper's mitigation)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.plaintext import PlaintextRangeIndex
from repro.core.caching import CachingConstantClient
from repro.core.constant import ConstantBrc, ConstantUrc
from repro.core.logarithmic import LogarithmicBrc
from repro.errors import IndexStateError

DOMAIN = 512


def make_client(records, seed=1, cls=ConstantBrc):
    scheme = cls(DOMAIN, rng=random.Random(seed))  # guard policy: raise
    scheme.build_index(records)
    return CachingConstantClient(scheme)


class TestConstruction:
    def test_requires_constant_scheme(self):
        with pytest.raises(IndexStateError):
            CachingConstantClient(LogarithmicBrc(64, rng=random.Random(1)))

    def test_requires_raise_policy(self):
        scheme = ConstantBrc(64, rng=random.Random(1), intersection_policy="allow")
        with pytest.raises(IndexStateError):
            CachingConstantClient(scheme)


class TestIntersectionFreedom:
    def test_overlapping_queries_work(self, small_records, small_oracle):
        client = make_client(small_records)
        # These overlap heavily — raw Constant would raise on the second.
        for lo, hi in [(10, 100), (50, 150), (0, 200), (120, 130)]:
            assert sorted(client.query(lo, hi)) == sorted(small_oracle.query(lo, hi))

    def test_repeated_query_served_from_cache(self, small_records, small_oracle):
        client = make_client(small_records)
        client.query(100, 200)
        before = client.stats.server_subqueries
        assert sorted(client.query(100, 200)) == sorted(
            small_oracle.query(100, 200)
        )
        assert client.stats.server_subqueries == before
        assert client.stats.served_fully_from_cache == 1

    def test_subset_query_served_from_cache(self, small_records, small_oracle):
        client = make_client(small_records)
        client.query(50, 300)
        before = client.stats.server_subqueries
        assert sorted(client.query(100, 200)) == sorted(
            small_oracle.query(100, 200)
        )
        assert client.stats.server_subqueries == before

    def test_partial_overlap_fetches_only_gap(self, small_records):
        client = make_client(small_records)
        client.query(100, 200)
        client.query(150, 320)  # gap is [201, 320]
        assert (201, 320) in client.cached_intervals

    def test_server_sees_disjoint_ranges_only(self, small_records):
        """The underlying guard is live and never trips: structural proof
        that every server-visible range is legal."""
        client = make_client(small_records)
        rng = random.Random(9)
        for _ in range(25):
            a, b = rng.randrange(DOMAIN), rng.randrange(DOMAIN)
            client.query(min(a, b), max(a, b))  # must never raise
        history = client._scheme.guard._history
        for i in range(len(history)):
            for j in range(i + 1, len(history)):
                l1, h1 = history[i]
                l2, h2 = history[j]
                assert h1 < l2 or h2 < l1, "server observed intersecting ranges"

    def test_urc_variant(self, small_records, small_oracle):
        client = make_client(small_records, cls=ConstantUrc)
        for lo, hi in [(10, 100), (50, 150)]:
            assert sorted(client.query(lo, hi)) == sorted(small_oracle.query(lo, hi))


class TestCorrectnessProperty:
    @given(
        queries=st.lists(
            st.tuples(st.integers(0, DOMAIN - 1), st.integers(0, DOMAIN - 1)),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_query_sequences(self, queries):
        rng = random.Random(5)
        records = [(i, rng.randrange(DOMAIN)) for i in range(120)]
        oracle = PlaintextRangeIndex(records)
        client = make_client(records, seed=7)
        for a, b in queries:
            lo, hi = min(a, b), max(a, b)
            assert sorted(client.query(lo, hi)) == sorted(oracle.query(lo, hi))

    def test_full_domain_then_anything(self, small_records, small_oracle):
        client = make_client(small_records)
        client.query(0, DOMAIN - 1)
        before = client.stats.server_subqueries
        for lo, hi in [(0, 0), (100, 400), (511, 511)]:
            assert sorted(client.query(lo, hi)) == sorted(small_oracle.query(lo, hi))
        assert client.stats.server_subqueries == before  # everything cached
