"""Serial-vs-pooled kernel differential across every registry scheme.

The kernel contract is byte-identical outputs regardless of backend.
This suite pins it at the strongest observable boundary — the wire: a
client runs real range queries against a server whose executor uses the
``SerialKernel``, recording every request/response frame; the same
frames then replay against a second server over the *same* storage
backend whose executor offloads every batch to a ``PooledKernel``
(crossover forced to 1), and each response frame must match the
recorded one byte for byte.  All seven registry schemes, over both the
in-memory and SQLite backends — if any pooled code path (chunking,
blob slicing, worker jobs, pickling) disagreed with the serial loop by
one byte anywhere, a frame comparison here fails.
"""

from __future__ import annotations

import random

import pytest

from repro import make_scheme
from repro.baselines.plaintext import PlaintextRangeIndex
from repro.crypto.kernel import PooledKernel, SerialKernel
from repro.exec.engine import QueryExecutor
from repro.protocol import RemoteRangeClient, RsseServer
from repro.storage import InMemoryBackend, SqliteBackend

SCHEMES = (
    "quadratic",
    "constant-brc",
    "constant-urc",
    "logarithmic-brc",
    "logarithmic-urc",
    "logarithmic-src",
    "logarithmic-src-i",
)

BACKENDS = ("memory", "sqlite")

RANGES = [(0, 63), (17, 51), (32, 32), (50, 60)]


@pytest.fixture(scope="module")
def pooled():
    """One worker pool for all 14 cases — spawn startup is ~0.5 s, and
    sharing it also means the pool sees every scheme's batch shapes."""
    kernel = PooledKernel(2, offload_min_units=1)
    yield kernel
    stats = kernel.stats()
    kernel.close()
    # The whole module must have exercised the *offloaded* lane, and a
    # silent worker death would have shown up as a counted fallback.
    assert stats["batches_offloaded"] > 0
    assert stats["serial_fallbacks"] == 0


@pytest.fixture(scope="module")
def dataset():
    rng = random.Random(11)
    return [(i, rng.randrange(64)) for i in range(150)]


class _RecordingTransport:
    """Forward frames to a server, keeping (request, response) pairs."""

    def __init__(self, handle):
        self._handle = handle
        self.frames: "list[tuple[bytes, bytes | None]]" = []

    def __call__(self, frame: bytes):
        response = self._handle(frame)
        self.frames.append(
            (bytes(frame), None if response is None else bytes(response))
        )
        return response


def _executor(kernel) -> QueryExecutor:
    # workers=1 and no cache: the kernel is the only variable.
    return QueryExecutor(workers=1, cache=False, kernel=kernel)


def _make_backend(kind: str, tmp_path):
    if kind == "sqlite":
        return SqliteBackend(tmp_path / "edb.sqlite")
    return InMemoryBackend()


@pytest.mark.parametrize("backend_kind", BACKENDS)
@pytest.mark.parametrize("name", SCHEMES)
def test_pooled_replay_is_byte_identical(
    name, backend_kind, dataset, pooled, tmp_path
):
    domain = 64 if name == "quadratic" else 128
    kwargs = (
        {"intersection_policy": "allow"} if name.startswith("constant") else {}
    )
    scheme = make_scheme(name, domain, rng=random.Random(21), **kwargs)

    backend = _make_backend(backend_kind, tmp_path)
    serial_server = RsseServer(backend, executor=_executor(SerialKernel()))
    transport = _RecordingTransport(serial_server.handle)
    client = RemoteRangeClient(scheme, transport, rng=random.Random(22))
    client.outsource(dataset)
    transport.frames.clear()  # keep only the query-phase frames

    oracle = PlaintextRangeIndex(dataset)
    for lo, hi in RANGES:
        assert client.query(lo, hi) == frozenset(oracle.query(lo, hi))
    assert transport.frames, "queries must have produced frames"

    # Same stored state, same request frames, pooled crypto lane: every
    # response frame must come back byte-identical.
    offloaded_before = pooled.stats()["batches_offloaded"]
    pooled_server = RsseServer(backend, executor=_executor(pooled))
    for request, expected in transport.frames:
        response = pooled_server.handle(request)
        assert (None if response is None else bytes(response)) == expected
    stats = pooled.stats()
    assert stats["batches_offloaded"] > offloaded_before
    assert stats["serial_fallbacks"] == 0
