"""Tests for the Π_2lev two-level SSE backend."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.plaintext import PlaintextRangeIndex
from repro.core.registry import EXPERIMENT_SCHEMES, make_scheme
from repro.crypto.prf import generate_key
from repro.errors import TokenError
from repro.sse.base import PrfKeyDeriver
from repro.sse.encoding import encode_id
from repro.sse.pi2lev import Pi2Lev
from repro.sse.pibas import PiBas

KEY = generate_key(random.Random(1))


def make(block_factor=8, inline_limit=2, seed=0):
    return Pi2Lev(
        PrfKeyDeriver(KEY),
        block_factor=block_factor,
        inline_limit=inline_limit,
        shuffle_rng=random.Random(seed),
    )


class TestCorrectness:
    @pytest.mark.parametrize("count", [0, 1, 2, 3, 7, 8, 9, 16, 17, 100])
    def test_list_lengths_around_boundaries(self, count):
        sse = make()
        payloads = [encode_id(i) for i in range(count)]
        index = sse.build_index({b"w": payloads})
        assert sorted(sse.search(index, sse.trapdoor(b"w"))) == sorted(payloads)

    def test_mixed_short_and_long_lists(self):
        sse = make()
        multimap = {
            b"short": [encode_id(1)],
            b"medium": [encode_id(i) for i in range(5)],
            b"long": [encode_id(i) for i in range(100, 180)],
        }
        index = sse.build_index(multimap)
        for kw, payloads in multimap.items():
            assert sorted(sse.search(index, sse.trapdoor(kw))) == sorted(payloads)

    def test_absent_keyword(self):
        sse = make()
        index = sse.build_index({b"w": [encode_id(1)]})
        assert sse.search(index, sse.trapdoor(b"other")) == []

    @given(
        st.dictionaries(
            st.binary(min_size=1, max_size=6),
            st.lists(st.integers(0, 1 << 30), max_size=40),
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_random(self, raw):
        multimap = {kw: [encode_id(i) for i in ids] for kw, ids in raw.items()}
        sse = make()
        index = sse.build_index(multimap)
        for kw, payloads in multimap.items():
            assert sorted(sse.search(index, sse.trapdoor(kw))) == sorted(payloads)


class TestTwoLevelStructure:
    def test_short_lists_are_single_entry(self):
        sse = make(inline_limit=2)
        index = sse.build_index({b"w": [encode_id(1), encode_id(2)]})
        assert len(index) == 1  # inlined: dictionary entry only

    def test_long_lists_spill_blocks(self):
        sse = make(block_factor=8, inline_limit=2)
        index = sse.build_index({b"w": [encode_id(i) for i in range(64)]})
        # 8 blocks + 8 pointers.
        assert len(index) == 16

    def test_storage_beats_pibas_on_heavy_lists(self):
        payloads = [encode_id(i) for i in range(512)]
        two_level = make(block_factor=32).build_index({b"w": payloads})
        flat = PiBas(PrfKeyDeriver(KEY), shuffle_rng=random.Random(0)).build_index(
            {b"w": payloads}
        )
        assert two_level.serialized_size() < flat.serialized_size()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            make(block_factor=0)
        with pytest.raises(ValueError):
            make(block_factor=8, inline_limit=9)

    def test_variable_length_payloads_rejected(self):
        sse = make()
        with pytest.raises(TokenError):
            sse.build_index({b"w": [b"aa", b"bbb"]})

    def test_foreign_token_empty(self):
        sse = make()
        index = sse.build_index({b"w": [encode_id(i) for i in range(50)]})
        foreign = PrfKeyDeriver(generate_key(random.Random(9))).derive(b"w")
        assert sse.search(index, foreign) == []


@pytest.mark.parametrize("name", EXPERIMENT_SCHEMES)
def test_pi2lev_drives_every_scheme(name, small_records, small_oracle):
    """The paper's actual SSE backend works as the black box everywhere."""
    extra = {"intersection_policy": "allow"} if name.startswith("constant") else {}
    scheme = make_scheme(
        name, 512, rng=random.Random(5), sse_factory=Pi2Lev, **extra
    )
    scheme.build_index(small_records)
    for lo, hi in [(37, 411), (0, 511), (250, 250)]:
        assert sorted(scheme.query(lo, hi).ids) == sorted(small_oracle.query(lo, hi))
