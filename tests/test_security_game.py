"""Tests for the mechanized ideal-real security game.

The central assertion: a simulator holding nothing but the formulated
L1/L2 leakage produces an index and tokens on which the real public
Search algorithm reproduces the real game's transcript exactly — for
adaptive query sequences, with repeats, across the RSSE reductions.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IndexStateError
from repro.security import (
    SseSimulator,
    logarithmic_reduction,
    run_ideal_game,
    run_real_game,
    src_reduction,
    sse_l1,
    sse_l2,
    transcripts_consistent,
)
from repro.sse.encoding import encode_id

MULTIMAP = {
    b"alpha": [encode_id(i) for i in range(8)],
    b"beta": [encode_id(100)],
    b"gamma": [encode_id(i) for i in range(50, 70)],
    b"delta": [],
}


def run_both(multimap, queries, seed=7):
    real = run_real_game(multimap, queries, rng=random.Random(seed))
    ideal = run_ideal_game(multimap, queries, rng=random.Random(seed + 1))
    return real, ideal


class TestSseGame:
    def test_simple_queries(self):
        real, ideal = run_both(MULTIMAP, [b"alpha", b"gamma"])
        assert transcripts_consistent(real, ideal) == []

    def test_repeated_queries_share_tokens(self):
        real, ideal = run_both(MULTIMAP, [b"alpha", b"beta", b"alpha", b"alpha"])
        assert transcripts_consistent(real, ideal) == []
        assert ideal.token_repeats == [None, None, 0, 0]

    def test_absent_keyword(self):
        real, ideal = run_both(MULTIMAP, [b"nope", b"alpha", b"nope"])
        assert transcripts_consistent(real, ideal) == []
        assert real.search_outputs[0] == []

    def test_empty_query_sequence(self):
        real, ideal = run_both(MULTIMAP, [])
        assert transcripts_consistent(real, ideal) == []

    def test_full_exhaustion(self):
        """Query every keyword: the simulator must program the entire
        dummy pool without running out or leaving inconsistencies."""
        real, ideal = run_both(MULTIMAP, sorted(MULTIMAP))
        assert transcripts_consistent(real, ideal) == []

    @given(
        st.dictionaries(
            st.binary(min_size=1, max_size=4),
            st.lists(st.integers(0, 1 << 20), max_size=12),
            max_size=6,
        ),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_adaptive_sequences(self, raw, data):
        multimap = {kw: [encode_id(i) for i in ids] for kw, ids in raw.items()}
        pool = sorted(multimap) + [b"\xff-missing"]
        queries = [
            data.draw(st.sampled_from(pool))
            for _ in range(data.draw(st.integers(0, 6)))
        ]
        real, ideal = run_both(multimap, queries, seed=3)
        assert transcripts_consistent(real, ideal) == []


class TestSimulatorContract:
    def test_token_before_index_rejected(self):
        sim = SseSimulator(sse_l1(MULTIMAP), rng=random.Random(1))
        from repro.security.leakage_fn import SseL2Entry

        with pytest.raises(IndexStateError):
            sim.fake_token(SseL2Entry((), None))

    def test_overclaimed_access_pattern_rejected(self):
        """If a (buggy) leakage claims more results than L1 declared
        postings, simulation must fail loudly — this is the consistency
        check that catches under-formulated leakage."""
        from repro.security.leakage_fn import SseL2Entry

        sim = SseSimulator(sse_l1({b"w": [encode_id(1)]}), rng=random.Random(1))
        sim.fake_index()
        with pytest.raises(IndexStateError):
            sim.fake_token(SseL2Entry((encode_id(1), encode_id(2)), None))

    def test_fake_index_matches_l1_exactly(self):
        l1 = sse_l1(MULTIMAP)
        sim = SseSimulator(l1, rng=random.Random(2))
        index = sim.fake_index()
        assert len(index) == l1.entry_count

    def test_leakage_functions(self):
        l1 = sse_l1(MULTIMAP)
        assert l1.entry_count == 29
        l2 = sse_l2(MULTIMAP, [b"beta", b"beta", b"alpha"])
        assert l2[0].repeats is None
        assert l2[1].repeats == 0
        assert l2[2].repeats is None
        assert l2[0].access_pattern == (encode_id(100),)


class TestRsseReductions:
    def test_logarithmic_brc_game(self, small_records):
        multimap, keywords = logarithmic_reduction(
            small_records, 512, [(10, 90), (100, 300), (10, 90)], cover="brc"
        )
        real, ideal = run_both(multimap, keywords, seed=11)
        assert transcripts_consistent(real, ideal) == []

    def test_logarithmic_urc_game(self, small_records):
        multimap, keywords = logarithmic_reduction(
            small_records, 512, [(3, 461), (77, 78)], cover="urc"
        )
        real, ideal = run_both(multimap, keywords, seed=12)
        assert transcripts_consistent(real, ideal) == []

    def test_src_game_with_alias_collisions(self, small_records):
        # [2,7] and [1,6] over a subrange share an SRC node: the ideal
        # game must reproduce the token repetition.
        multimap, keywords = src_reduction(
            small_records, 512, [(2, 7), (1, 6), (100, 300)]
        )
        assert keywords[0] == keywords[1]
        real, ideal = run_both(multimap, keywords, seed=13)
        assert transcripts_consistent(real, ideal) == []

    def test_cross_range_node_reuse(self, small_records):
        """Two overlapping ranges share dyadic nodes; the shared node's
        token must repeat in both worlds (the paper's alias leakage)."""
        multimap, keywords = logarithmic_reduction(
            small_records, 512, [(0, 255), (0, 255)], cover="brc"
        )
        real, ideal = run_both(multimap, keywords, seed=14)
        assert transcripts_consistent(real, ideal) == []
        assert any(r is not None for r in ideal.token_repeats)
