"""Differential churn: live ingest over the wire vs in-process vs oracle.

The managed-store contract is that the network boundary is invisible:
an interleaved insert/delete/search workload driven through
:class:`~repro.net.NetRangeStore` over a real TCP server must produce

* exactly the plaintext oracle's answers (correctness),
* the same answers as an in-process :class:`~repro.rangestore.
  RangeStore` fed the identical op sequence (parity), and
* **byte-identical** :class:`~repro.protocol.messages.
  StoreSearchResponse` frames from both servers (determinism: answers
  are sorted exact ids + deterministic LSM accounting, independent of
  each server's random key material),

for every scheme in the registry.  A cluster store must additionally
route each op to the shard owning its record id.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster import ClusterRangeStore, make_shard_map
from repro.net import NetRangeStore, serve_in_thread
from repro.protocol import RsseServer, StoreSearchRequest
from repro.protocol.messages import parse_message

ALL_SCHEMES = [
    "quadratic",
    "constant-brc",
    "constant-urc",
    "logarithmic-brc",
    "logarithmic-urc",
    "logarithmic-src",
    "logarithmic-src-i",
]

DOMAIN = 1 << 8


def _churn_script(seed: int, steps: int = 60):
    """Deterministic interleaved op stream: (kind, *args) tuples."""
    rng = random.Random(seed)
    live: "dict[int, int]" = {}
    next_id = 0
    script = []
    for step in range(steps):
        roll = rng.random()
        if roll < 0.55 or not live:
            value = rng.randrange(DOMAIN)
            script.append(("insert", next_id, value))
            live[next_id] = value
            next_id += 1
        elif roll < 0.75:
            rid = rng.choice(sorted(live))
            script.append(("delete", rid, live.pop(rid)))
        else:
            lo = rng.randrange(DOMAIN)
            hi = rng.randrange(lo, DOMAIN)
            script.append(("search", lo, hi))
    script.append(("search", 0, DOMAIN - 1))
    return script


def _drive(script, stores, oracle_check):
    """Replay ``script`` into every store, checking each search."""
    oracle: "dict[int, int]" = {}
    for op, a, b in script:
        if op == "insert":
            oracle[a] = b
            for store in stores:
                store.insert(a, b)
        elif op == "delete":
            oracle.pop(a, None)
            for store in stores:
                store.delete(a, b)
        else:
            expected = frozenset(
                rid for rid, value in oracle.items() if a <= value <= b
            )
            oracle_check(a, b, expected)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_differential_churn_all_schemes(scheme):
    """Net store == in-process store == oracle, frames byte-identical."""
    core = RsseServer()  # in-process twin, its own independent keys
    local = NetRangeStore(
        core.handle_request,
        domain_size=DOMAIN,
        scheme=scheme,
        index_id=21,
        consolidation_step=2,
    )
    with serve_in_thread() as server:
        remote = NetRangeStore.connect(
            server.host,
            server.port,
            domain_size=DOMAIN,
            scheme=scheme,
            index_id=21,
            consolidation_step=2,
        )

        def check(lo, hi, expected):
            local.flush()
            remote.flush()
            request = StoreSearchRequest(21, lo, hi).to_frame()
            local_frame = core.handle_request(request)
            remote_frame = remote._transport(request)
            assert local_frame == remote_frame  # byte-identical determinism
            answer = parse_message(remote_frame)
            assert frozenset(answer.ids) == expected
            assert answer.scheme == scheme

        _drive(_churn_script(seed=0xC0FFEE + len(scheme)), [local, remote], check)
        remote.close()


def test_store_facade_matches_in_process_rangestore():
    """NetRangeStore answers == plain RangeStore fed the same ops."""
    from repro.rangestore import RangeStore

    plain = RangeStore.open(
        "logarithmic-brc", domain_size=DOMAIN, consolidation_step=2
    )
    core = RsseServer()
    net = NetRangeStore(
        core.handle_request,
        domain_size=DOMAIN,
        scheme="logarithmic-brc",
        consolidation_step=2,
    )

    def check(lo, hi, expected):
        assert plain.search(lo, hi).ids == expected
        assert net.search(lo, hi).ids == expected

    _drive(_churn_script(seed=42), [plain, net], check)


def test_cluster_store_routes_and_merges():
    """Ops land on the shard owning their record id; search unions."""
    servers = [serve_in_thread() for _ in range(3)]
    try:
        shard_map = make_shard_map([(s.host, s.port) for s in servers])
        cluster = ClusterRangeStore(
            shard_map,
            domain_size=DOMAIN,
            scheme="logarithmic-brc",
            consolidation_step=2,
        )

        def check(lo, hi, expected):
            assert cluster.search(lo, hi).ids == expected

        _drive(_churn_script(seed=7, steps=40), [cluster], check)

        # Every contacted shard holds a store, and ops actually spread.
        populated = []
        for shard, spec in enumerate(shard_map.shards):
            stores = servers[shard].server.core.stats_dict().get("stores", {})
            handle = str(spec.index_id + cluster.handle_offset)
            if stores.get(handle, {}).get("active_indexes"):
                populated.append(shard)
        assert len(populated) >= 2, populated
        cluster.close()
    finally:
        for server in servers:
            server.__exit__(None, None, None)


def test_cluster_store_traced_search_has_shard_children():
    """A traced scatter shows router.scatter with router.shard kids."""
    servers = [serve_in_thread() for _ in range(2)]
    try:
        shard_map = make_shard_map([(s.host, s.port) for s in servers])
        with ClusterRangeStore(
            shard_map, domain_size=DOMAIN, scheme="logarithmic-brc"
        ) as cluster:
            cluster.insert(1, 10)
            cluster.insert(2, 200)
            cluster.search(0, DOMAIN - 1, trace_id="feedface00000001")
            traces = cluster.tracer.find("feedface00000001")
            assert traces, "scatter must record a trace"
            spans = [s["name"] for t in traces for s in t["spans"]]
            root_traces = [
                t
                for t in traces
                if any(s["name"] == "router.scatter" for s in t["spans"])
            ]
            assert root_traces
            assert spans.count("router.shard") >= len(shard_map)
            # Children nest under the root: strictly deeper.
            for trace in root_traces:
                roots = [
                    s for s in trace["spans"] if s["name"] == "router.scatter"
                ]
                kids = [
                    s for s in trace["spans"] if s["name"] == "router.shard"
                ]
                assert kids, trace
                assert all(
                    k["depth"] > min(r["depth"] for r in roots) for k in kids
                )
    finally:
        for server in servers:
            server.__exit__(None, None, None)
