"""HybridRangeStore checkpointing: every lane, plus the dispatch brain.

The PR-4 open item: a hybrid store must survive a restart with *all* of
its adaptive state — per-lane scheme keys and indexes, the owner-side
value histogram (the skew knowledge behind SRC pricing), the calibrated
cost model, and any operator-pinned lane.
"""

from __future__ import annotations

import random

import pytest

from repro import HybridRangeStore
from repro.baselines.plaintext import PlaintextRangeIndex
from repro.errors import IntegrityError
from repro.exec.dispatch import calibrate_cost_model
from repro.storage import InMemoryBackend, SqliteBackend

DOMAIN = 1 << 10


def _populated_store(backend=None, rng_seed=5):
    store = HybridRangeStore(
        domain_size=DOMAIN, backend=backend, rng=random.Random(rng_seed)
    )
    rng = random.Random(77)
    records = [(i, 100) for i in range(60)] + [
        (60 + i, rng.randrange(DOMAIN)) for i in range(140)
    ]
    store.insert_many(records)
    store.flush()
    return store, records


@pytest.mark.parametrize("backend_kind", ["memory", "sqlite", "none"])
def test_round_trip_preserves_results(tmp_path, backend_kind):
    def fresh_backend():
        if backend_kind == "memory":
            return InMemoryBackend()
        if backend_kind == "sqlite":
            return SqliteBackend(tmp_path / f"hyb-{fresh_backend.n}.sqlite")
        return None

    fresh_backend.n = 0
    store, records = _populated_store(fresh_backend())
    oracle = PlaintextRangeIndex(records)
    ranges = [(0, DOMAIN - 1), (50, 150), (100, 100), (900, 1000)]
    before = [store.search(lo, hi).ids for lo, hi in ranges]

    path = tmp_path / "hybrid.rsse"
    store.save(path, passphrase="s3cret")
    fresh_backend.n = 1
    restored = HybridRangeStore.load(
        path, passphrase="s3cret", backend=fresh_backend()
    )
    assert restored.schemes == store.schemes
    for (lo, hi), want in zip(ranges, before):
        got = restored.search(lo, hi)
        assert got.ids == want
        assert got.ids == frozenset(oracle.query(lo, hi))
    # The store keeps working as a live store: new writes, new queries.
    restored.insert(9999, 77)
    assert 9999 in restored.search(77, 77).ids


def test_histogram_survives_and_keeps_routing(tmp_path):
    """The snapshot carries the skew knowledge: restored dispatch
    decisions equal pre-save decisions, including SRC false-positive
    pricing that only the histogram knows."""
    store, _ = _populated_store()
    path = tmp_path / "hybrid.rsse"
    probe_ranges = [(0, DOMAIN - 1), (60, 140), (90, 110), (500, 900)]
    want = [store.search(lo, hi).scheme_chosen for lo, hi in probe_ranges]
    want_hist = store.histogram.dump_counts()
    store.save(path)

    restored = HybridRangeStore.load(path)
    assert restored.histogram.dump_counts() == want_hist
    assert restored.histogram.total == store.histogram.total
    got = [restored.search(lo, hi).scheme_chosen for lo, hi in probe_ranges]
    assert got == want


def test_calibrated_cost_model_survives(tmp_path):
    store, _ = _populated_store()
    model = calibrate_cost_model(probe_labels=8, repeats=1)
    store.dispatcher.cost_model = model
    path = tmp_path / "hybrid.rsse"
    store.save(path)
    restored = HybridRangeStore.load(path)
    assert restored.dispatcher.cost_model.calibrated
    assert restored.dispatcher.cost_model == model


def test_pinned_dispatch_survives(tmp_path):
    store, _ = _populated_store()
    store.dispatch = "logarithmic-brc"
    path = tmp_path / "hybrid.rsse"
    store.save(path)
    restored = HybridRangeStore.load(path)
    assert restored.dispatch == "logarithmic-brc"
    assert (
        restored.search(10, 400).scheme_chosen == "logarithmic-brc"
    )
    restored.dispatch = "auto"  # and the pin is still just a pin


def test_wrong_magic_rejected(tmp_path):
    path = tmp_path / "not-a-hybrid.bin"
    path.write_bytes(b"RSSESTORE1" + b"\x00" * 40)
    with pytest.raises(IntegrityError):
        HybridRangeStore.load(path)


def test_wrong_passphrase_rejected(tmp_path):
    store, _ = _populated_store()
    path = tmp_path / "hybrid.rsse"
    store.save(path, passphrase="right")
    with pytest.raises(IntegrityError):
        HybridRangeStore.load(path, passphrase="wrong")


def test_load_replaces_stale_backend_state(tmp_path):
    """Loading into a backend that already holds hybrid state wipes the
    stale lanes first — the checkpoint is the source of truth."""
    backend = SqliteBackend(tmp_path / "hyb.sqlite")
    store, records = _populated_store(backend)
    path = tmp_path / "hybrid.rsse"
    store.save(path)
    # Diverge the live backend from the checkpoint...
    store.insert(5000, 3)
    store.flush()
    # ...then reload the checkpoint over it.
    restored = HybridRangeStore.load(path, backend=backend)
    assert 5000 not in restored.search(3, 3).ids
    oracle = PlaintextRangeIndex(records)
    assert restored.search(0, DOMAIN - 1).ids == frozenset(
        oracle.query(0, DOMAIN - 1)
    )


def test_truncated_histogram_chunk_rejected(tmp_path):
    """A histogram chunk whose declared bucket count exceeds its actual
    counts must fail loudly — zero-filled tails would silently misprice
    dispatch."""
    from repro.io.snapshot import _Reader, _chunk
    from repro.rangestore import _HYBRID_MAGIC

    store, _ = _populated_store()
    path = tmp_path / "hybrid.rsse"
    store.save(path)
    blob = path.read_bytes()
    reader = _Reader(blob[len(_HYBRID_MAGIC) :])
    domain, dispatch, model = reader.chunk(), reader.chunk(), reader.chunk()
    histogram = reader.chunk()
    rest = blob[len(_HYBRID_MAGIC) + 8 * 4 + len(domain) + len(dispatch)
                + len(model) + len(histogram) :]
    forged = b"".join(
        [
            _HYBRID_MAGIC,
            _chunk(domain),
            _chunk(dispatch),
            _chunk(model),
            _chunk(histogram[:-16]),  # same bucket count, 2 counts short
            rest,
        ]
    )
    bad = tmp_path / "forged.rsse"
    bad.write_bytes(forged)
    with pytest.raises(IntegrityError):
        HybridRangeStore.load(bad)
