"""Shared fixtures for the RSSE test suite."""

from __future__ import annotations

import random

import pytest

from repro.baselines.plaintext import PlaintextRangeIndex


@pytest.fixture
def rng():
    """A deterministically seeded RNG; reseeded per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_records(rng):
    """300 records over a 512-value domain with some duplicate values."""
    return [(i, rng.randrange(512)) for i in range(300)]


@pytest.fixture
def small_oracle(small_records):
    """Plaintext oracle for ``small_records``."""
    return PlaintextRangeIndex(small_records)


@pytest.fixture
def skewed_records(rng):
    """400 records where one value holds half the mass (SRC worst case)."""
    heavy = [(i, 100) for i in range(200)]
    rest = [(200 + i, rng.randrange(512)) for i in range(200)]
    return heavy + rest


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running integration test")
