"""Unit tests for the GGM length-doubling PRG."""

from __future__ import annotations

import pytest

from repro.crypto.prg import SEED_LEN, g, g0, g1, g_bit, g_path
from repro.errors import KeyError_

SEED = bytes(range(SEED_LEN))


class TestExpansion:
    def test_halves_have_seed_length(self):
        left, right = g(SEED)
        assert len(left) == SEED_LEN and len(right) == SEED_LEN

    def test_halves_differ(self):
        left, right = g(SEED)
        assert left != right

    def test_g0_g1_match_g(self):
        left, right = g(SEED)
        assert g0(SEED) == left and g1(SEED) == right

    def test_deterministic(self):
        assert g(SEED) == g(SEED)

    def test_seed_sensitivity(self):
        other = bytes(SEED_LEN)
        assert g(SEED) != g(other)

    def test_output_not_seed(self):
        left, right = g(SEED)
        assert SEED not in (left, right)

    @pytest.mark.parametrize("bad", [b"", b"x" * 16, b"x" * 33])
    def test_rejects_bad_seed(self, bad):
        with pytest.raises(KeyError_):
            g(bad)


class TestGBit:
    def test_bit_selection(self):
        assert g_bit(SEED, 0) == g0(SEED)
        assert g_bit(SEED, 1) == g1(SEED)

    @pytest.mark.parametrize("bad", [-1, 2, 10])
    def test_rejects_non_bits(self, bad):
        with pytest.raises(ValueError):
            g_bit(SEED, bad)


class TestGPath:
    def test_empty_path_is_identity(self):
        assert g_path(SEED, []) == SEED

    def test_single_steps(self):
        assert g_path(SEED, [0]) == g0(SEED)
        assert g_path(SEED, [1]) == g1(SEED)

    def test_composition(self):
        # The paper's example: value 6 = (110)2 -> G0(G1(G1(k))).
        assert g_path(SEED, [1, 1, 0]) == g0(g1(g1(SEED)))

    def test_distinct_paths_distinct_outputs(self):
        outputs = {g_path(SEED, [(v >> 2) & 1, (v >> 1) & 1, v & 1]) for v in range(8)}
        assert len(outputs) == 8

    def test_prefix_consistency(self):
        # Evaluating from an intermediate seed must equal the full path —
        # the property DPRF delegation rests on.
        mid = g_path(SEED, [1, 0])
        assert g_path(mid, [1, 1]) == g_path(SEED, [1, 0, 1, 1])
