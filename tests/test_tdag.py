"""Unit and property tests for the TDAG and the SRC cover (Lemma 1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.covers.tdag import Tdag, TdagNode
from repro.errors import DomainError


class TestTdagNode:
    def test_regular_matches_dyadic(self):
        node = TdagNode(2, 1)
        assert (node.lo, node.hi) == (4, 7)

    def test_injected_is_half_shifted(self):
        # Paper Figure 3: N1,2 and N2,5.
        assert (TdagNode(1, 0, injected=True).lo, TdagNode(1, 0, injected=True).hi) == (1, 2)
        assert (TdagNode(2, 0, injected=True).lo, TdagNode(2, 0, injected=True).hi) == (2, 5)

    def test_injected_level_zero_rejected(self):
        with pytest.raises(DomainError):
            TdagNode(0, 0, injected=True)

    def test_labels_distinguish_kinds(self):
        assert TdagNode(1, 0).label() != TdagNode(1, 0, injected=True).label()


class TestStructure:
    def test_injected_counts_figure3(self):
        # Domain 8 (height 3): 3 injected at level 1, 1 at level 2, 0 at 3.
        tdag = Tdag(8)
        assert tdag.injected_count(1) == 3
        assert tdag.injected_count(2) == 1
        assert tdag.injected_count(3) == 0

    def test_node_exists_boundaries(self):
        tdag = Tdag(8)
        assert tdag.node_exists(TdagNode(1, 2, injected=True))  # N5,6
        assert not tdag.node_exists(TdagNode(1, 3, injected=True))  # past edge
        assert tdag.node_exists(TdagNode(3, 0))
        assert not tdag.node_exists(TdagNode(4, 0))

    def test_covering_nodes_count_logarithmic(self):
        tdag = Tdag(1 << 10)
        for value in (0, 1, 511, 512, 1023):
            nodes = tdag.covering_nodes(value)
            assert len(nodes) <= 2 * (tdag.height + 1)
            for node in nodes:
                assert node.covers_value(value)

    def test_covering_nodes_includes_injected(self):
        tdag = Tdag(8)
        nodes = tdag.covering_nodes(2)
        assert TdagNode(2, 0, injected=True) in nodes  # N2,5 contains 2
        assert TdagNode(1, 0, injected=True) in nodes  # N1,2 contains 2

    def test_covering_nodes_exhaustive_domain_16(self):
        """Every (value, node) pair agrees with arithmetic containment."""
        tdag = Tdag(16)
        all_nodes = []
        for level in range(tdag.height + 1):
            for index in range(1 << (tdag.height - level)):
                all_nodes.append(TdagNode(level, index))
            for index in range(tdag.injected_count(level)):
                all_nodes.append(TdagNode(level, index, injected=True))
        for value in range(16):
            covering = set(tdag.covering_nodes(value))
            for node in all_nodes:
                assert (node in covering) == node.covers_value(value), (value, node)

    def test_at_most_one_injected_per_level(self):
        tdag = Tdag(1 << 8)
        for value in range(256):
            per_level = {}
            for node in tdag.covering_nodes(value):
                if node.injected:
                    assert node.level not in per_level, (value, node)
                    per_level[node.level] = node


class TestSrcCover:
    def test_paper_example_2_7(self):
        # Figure 3: [2, 7] covered by the root N0,7.
        tdag = Tdag(8)
        node = tdag.src_cover(2, 7)
        assert (node.lo, node.hi) == (0, 7) and not node.injected

    def test_paper_example_3_5(self):
        # Figure 3: [3, 5] covered by injected N2,5.
        tdag = Tdag(8)
        node = tdag.src_cover(3, 5)
        assert (node.lo, node.hi) == (2, 5) and node.injected

    def test_single_value_is_leaf(self):
        tdag = Tdag(8)
        node = tdag.src_cover(4, 4)
        assert (node.level, node.lo) == (0, 4)

    def test_full_domain_is_root(self):
        tdag = Tdag(64)
        node = tdag.src_cover(0, 63)
        assert node.size == 64

    def test_exhaustive_lemma1_domain_128(self):
        """Lemma 1, checked for every range of a 128-value domain: the SRC
        node covers the range and its subtree has at most 4R leaves."""
        tdag = Tdag(128)
        for lo in range(128):
            for hi in range(lo, 128):
                node = tdag.src_cover(lo, hi)
                assert node.covers_range(lo, hi), (lo, hi, node)
                assert node.size <= 4 * (hi - lo + 1), (lo, hi, node)

    def test_minimality_exhaustive_domain_32(self):
        """No TDAG node strictly smaller than the SRC answer covers the
        range (the cover is the smallest subtree, as the paper requires)."""
        tdag = Tdag(32)
        for lo in range(32):
            for hi in range(lo, 32):
                chosen = tdag.src_cover(lo, hi)
                for level in range(chosen.level):
                    width = 1 << (tdag.height - level)
                    for index in range(width):
                        assert not TdagNode(level, index).covers_range(lo, hi)
                    for index in range(tdag.injected_count(level)):
                        assert not TdagNode(level, index, injected=True).covers_range(lo, hi)

    @given(st.integers(1, 1 << 20), st.data())
    @settings(max_examples=300)
    def test_lemma1_random_large_domain(self, size, data):
        domain = 1 << 20
        lo = data.draw(st.integers(0, domain - size))
        hi = lo + size - 1
        node = Tdag(domain).src_cover(lo, hi)
        assert node.covers_range(lo, hi)
        assert node.size <= 4 * size

    def test_invalid_range_rejected(self):
        tdag = Tdag(16)
        with pytest.raises(Exception):
            tdag.src_cover(5, 3)
        with pytest.raises(Exception):
            tdag.src_cover(0, 16)


class TestKeywordBudget:
    def test_keywords_per_value_bounded(self):
        tdag = Tdag(1 << 12)
        for value in range(0, 1 << 12, 97):
            assert tdag.keywords_per_value(value) <= 2 * (tdag.height + 1)
