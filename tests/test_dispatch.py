"""Dispatcher regression tests: consultation, overrides, no fallback.

Spy-planner tests prove the :class:`~repro.exec.dispatch.CostDispatcher`
consults every configured strategy exactly once per (uncached) query,
honors a forced ``--dispatch <scheme>`` override, and that a dispatched
search never falls back to the retired per-token Π_bas loop.  Also
covers the hint plumbing end-to-end, the harness ``dispatch``
experiment, and the ``BENCH_*.json`` overwrite guard.
"""

from __future__ import annotations

import random
import sys

import pytest

import repro.exec.dispatch as dispatch_mod
from repro.errors import InvalidRangeError
from repro.exec.dispatch import (
    DEFAULT_HYBRID_SCHEMES,
    HINT_AUTO,
    STRATEGIES,
    CostDispatcher,
    CostModel,
    ValueHistogram,
    normalize_hint,
)
from repro.protocol import messages as msg
from repro.protocol.client import RemoteRangeClient
from repro.protocol.server import RsseServer
from repro.rangestore import HybridRangeStore
from repro.core.registry import make_scheme


class TestDispatcherConsultation:
    def test_consults_every_strategy_exactly_once(self, monkeypatch):
        calls: "list[str]" = []
        real = dispatch_mod.plan_range

        def spy(lo, hi, **kwargs):
            calls.append(kwargs.get("scheme", ""))
            return real(lo, hi, **kwargs)

        monkeypatch.setattr(dispatch_mod, "plan_range", spy)
        dispatcher = CostDispatcher(1 << 12, DEFAULT_HYBRID_SCHEMES)
        decision = dispatcher.choose(10, 600)
        assert sorted(calls) == sorted(DEFAULT_HYBRID_SCHEMES)
        assert len(decision.considered) == len(DEFAULT_HYBRID_SCHEMES)
        # One plan per strategy per query — never re-planned within a
        # choose(), and the considered set names each exactly once.
        assert sorted(c.scheme for c in decision.considered) == sorted(
            DEFAULT_HYBRID_SCHEMES
        )

    def test_cache_skips_replanning_until_density_changes(self, monkeypatch):
        calls: "list[str]" = []
        real = dispatch_mod.plan_range

        def spy(lo, hi, **kwargs):
            calls.append(kwargs.get("scheme", ""))
            return real(lo, hi, **kwargs)

        monkeypatch.setattr(dispatch_mod, "plan_range", spy)
        hist = ValueHistogram(1 << 12)
        dispatcher = CostDispatcher(
            1 << 12, DEFAULT_HYBRID_SCHEMES, density=hist.expected_matches
        )
        first = dispatcher.choose(10, 600)
        assert len(calls) == len(DEFAULT_HYBRID_SCHEMES)
        assert dispatcher.choose(10, 600) is first  # memoized
        assert len(calls) == len(DEFAULT_HYBRID_SCHEMES)
        hist.add(300)  # density changed -> decisions stale
        dispatcher.choose(10, 600)
        assert len(calls) == 2 * len(DEFAULT_HYBRID_SCHEMES)

    def test_picks_minimum_cost(self):
        dispatcher = CostDispatcher(1 << 12, DEFAULT_HYBRID_SCHEMES)
        decision = dispatcher.choose(0, 1000)
        assert decision.est_cost == min(c.est_cost for c in decision.considered)
        assert decision.scheme in DEFAULT_HYBRID_SCHEMES
        assert not decision.forced

    def test_every_registry_strategy_plans(self):
        dispatcher = CostDispatcher(256, tuple(STRATEGIES))
        decision = dispatcher.choose(3, 77)
        assert len(decision.considered) == len(STRATEGIES)

    def test_rejects_unknown_scheme_and_empty_set(self):
        with pytest.raises(InvalidRangeError):
            CostDispatcher(64, ("no-such-scheme",))
        with pytest.raises(InvalidRangeError):
            CostDispatcher(64, ())

    def test_rejects_inverted_range(self):
        with pytest.raises(InvalidRangeError):
            CostDispatcher(64).choose(5, 2)


class TestForcedOverride:
    def test_forced_always_wins_regardless_of_cost(self):
        # Pin the lane the cost model would never pick for a wide range.
        dispatcher = CostDispatcher(
            1 << 12, DEFAULT_HYBRID_SCHEMES, forced="logarithmic-src"
        )
        for lo, hi in ((0, 4000), (5, 5), (100, 3000)):
            decision = dispatcher.choose(lo, hi)
            assert decision.scheme == "logarithmic-src"
            assert decision.forced

    def test_forced_plans_only_the_forced_strategy(self, monkeypatch):
        calls: "list[str]" = []
        real = dispatch_mod.plan_range

        def spy(lo, hi, **kwargs):
            calls.append(kwargs.get("scheme", ""))
            return real(lo, hi, **kwargs)

        monkeypatch.setattr(dispatch_mod, "plan_range", spy)
        dispatcher = CostDispatcher(
            1 << 12, DEFAULT_HYBRID_SCHEMES, forced="logarithmic-brc"
        )
        dispatcher.choose(9, 700)
        assert calls == ["logarithmic-brc"]

    def test_force_validates_and_unpins(self):
        dispatcher = CostDispatcher(1 << 12, DEFAULT_HYBRID_SCHEMES)
        with pytest.raises(InvalidRangeError):
            dispatcher.force("constant-brc")  # valid scheme, not configured
        dispatcher.force("logarithmic-src")
        assert dispatcher.choose(0, 100).forced
        dispatcher.force(HINT_AUTO)
        assert not dispatcher.choose(0, 100).forced


class TestNoPerTokenFallback:
    def test_dispatched_search_never_uses_legacy_pibas_loop(self, monkeypatch):
        """Whatever lane is chosen, execution must route through the
        engine's coalesced walk — the retired one-walk-per-token path
        (module-level ``pibas.search``) must never run."""
        store = HybridRangeStore(domain_size=512, rng=random.Random(4))
        store.insert_many((i, (i * 37) % 512) for i in range(120))
        store.flush()

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("per-token pibas search path used")

        import repro.core.split as split_mod
        import repro.sse.pibas as pibas_mod

        monkeypatch.setattr(pibas_mod, "search", boom)
        monkeypatch.setattr(split_mod, "pibas_search", boom)
        for lo, hi in ((0, 511), (7, 7), (100, 140)):
            outcome = store.search(lo, hi)
            assert outcome.scheme_chosen in store.schemes
            assert outcome.probes_issued > 0  # the engine really ran


class TestHybridStoreBehavior:
    def test_outcome_carries_decision_fields(self):
        store = HybridRangeStore(domain_size=256, rng=random.Random(9))
        store.insert_many((i, i % 256) for i in range(64))
        outcome = store.search(10, 30)
        assert outcome.scheme_chosen in store.schemes
        assert outcome.est_cost_chosen > 0
        considered = dict(outcome.plans_considered)
        assert set(considered) == set(store.schemes)
        assert outcome.est_cost_chosen == min(considered.values())

    def test_dispatch_property_round_trips(self):
        store = HybridRangeStore(domain_size=128, rng=random.Random(2))
        assert store.dispatch == HINT_AUTO
        store.dispatch = "logarithmic-brc"
        assert store.dispatch == "logarithmic-brc"
        store.insert(1, 5)
        assert store.search(0, 127).scheme_chosen == "logarithmic-brc"
        store.dispatch = HINT_AUTO
        assert store.dispatch == HINT_AUTO

    def test_needs_two_distinct_lanes(self):
        from repro.errors import IndexStateError

        with pytest.raises(IndexStateError):
            HybridRangeStore(
                domain_size=64,
                schemes=("logarithmic-brc", "logarithmic-brc"),
            )
        # A duplicate hidden among distinct lanes is refused too — it
        # would double-score one scheme and clobber its backend slice.
        with pytest.raises(IndexStateError):
            HybridRangeStore(
                domain_size=64,
                schemes=(
                    "logarithmic-brc",
                    "logarithmic-src",
                    "logarithmic-brc",
                ),
            )

    def test_calibrate_updates_dispatcher_model(self):
        store = HybridRangeStore(domain_size=128, rng=random.Random(6))
        assert not store.dispatcher.cost_model.calibrated
        model = store.calibrate(repeats=1)
        assert model.calibrated
        assert store.dispatcher.cost_model is model

    def test_histogram_follows_inserts_and_deletes(self):
        store = HybridRangeStore(domain_size=100, rng=random.Random(8))
        for i in range(10):
            store.insert(i, 50)
        assert store.histogram.expected_matches(0, 99) == pytest.approx(10)
        store.delete(0, 50)
        assert store.histogram.expected_matches(0, 99) == pytest.approx(9)


class TestNormalizeHint:
    @pytest.mark.parametrize("raw", list(STRATEGIES) + [HINT_AUTO])
    def test_known_hints_pass_through(self, raw):
        assert normalize_hint(raw) == raw

    @pytest.mark.parametrize(
        "raw",
        ["", "pb", "junk", "LOGARITHMIC-BRC", b"\xff\xfe", 123, None, "x" * 99],
    )
    def test_garbage_degrades_to_auto(self, raw):
        assert normalize_hint(raw) == HINT_AUTO

    def test_bytes_decode(self):
        assert normalize_hint(b"logarithmic-src") == "logarithmic-src"


class TestServerHintTally:
    def _client(self, hint_transport):
        scheme = make_scheme("logarithmic-brc", 64, rng=random.Random(5))
        client = RemoteRangeClient(scheme, hint_transport, rng=random.Random(6))
        client.outsource([(0, 5), (1, 44), (2, 30)])
        return client

    def test_query_many_defaults_hint_to_scheme_name(self):
        server = RsseServer()
        client = self._client(server.handle)
        client.query_many([(0, 63), (10, 40)])
        assert server.last_dispatch_hint == "logarithmic-brc"
        assert server.dispatch_hints == {"logarithmic-brc": 1}

    def test_unknown_hint_counts_as_auto(self):
        server = RsseServer()
        client = self._client(server.handle)
        client.query_many([(0, 63)], dispatch_hint="zigzag-9000")
        assert server.last_dispatch_hint == HINT_AUTO
        assert server.dispatch_hints == {HINT_AUTO: 1}

    def test_interactive_batch_tallies_exactly_once(self):
        """SRC-i's two protocol rounds must not double-count the batch:
        the hint rides round 1 only, and hint-less frames (round 2,
        legacy clients) leave the tally untouched."""
        server = RsseServer()
        scheme = make_scheme("logarithmic-src-i", 64, rng=random.Random(7))
        client = RemoteRangeClient(scheme, server.handle, rng=random.Random(8))
        client.outsource([(i, i % 64) for i in range(40)])
        client.query_many([(0, 63), (10, 20)])
        assert server.dispatch_hints == {"logarithmic-src-i": 1}
        client.query_many([(5, 30)])
        assert server.dispatch_hints == {"logarithmic-src-i": 2}


class TestHarnessDispatchExperiment:
    def test_dispatch_experiment_renders(self):
        from repro.harness.cli import run_experiment

        out = run_experiment("dispatch")
        assert "Adaptive dispatch" in out
        assert "lane tally" in out
        assert "logarithmic" in out

    def test_dispatch_experiment_honors_forced_lane(self):
        from repro.harness.cli import run_experiment

        out = run_experiment("dispatch", dispatch="logarithmic-src")
        assert "logarithmic-src (forced)" in out
        assert "logarithmic-brc (forced)" not in out

    def test_cli_flag_round_trip(self, capsys):
        from repro.harness.cli import main

        assert main(["dispatch", "--dispatch", "logarithmic-brc"]) == 0
        assert "logarithmic-brc (forced)" in capsys.readouterr().out


class TestBaselineOverwriteGuard:
    def _jsonout(self):
        sys.path.insert(0, "benchmarks")
        try:
            import jsonout
        finally:
            sys.path.pop(0)
        return jsonout

    def test_refuses_overwriting_committed_baseline(self, tmp_path):
        jsonout = self._jsonout()
        path = tmp_path / "BENCH_PR99.json"
        jsonout.emit_json(path, "s", [])  # fresh file: fine
        with pytest.raises(jsonout.BaselineOverwriteError):
            jsonout.emit_json(path, "s", [])
        # The refused write must leave the original untouched.
        assert "results" in path.read_text()

    def test_force_overwrites(self, tmp_path):
        jsonout = self._jsonout()
        path = tmp_path / "BENCH_PR99.json"
        jsonout.emit_json(path, "one", [])
        doc = jsonout.emit_json(path, "two", [], force=True)
        assert doc["suite"] == "two"

    def test_scratch_names_overwrite_freely(self, tmp_path):
        jsonout = self._jsonout()
        path = tmp_path / "bench-smoke.json"
        jsonout.emit_json(path, "one", [])
        jsonout.emit_json(path, "two", [])  # no force needed
