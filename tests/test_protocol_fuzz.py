"""Fuzzing the protocol parser and server with hostile bytes.

A server on the network boundary must treat every inbound frame as
attacker-controlled.  These tests feed random and mutated frames to the
parser and the server and require the library's own exceptions — never
unhandled ``IndexError``/``struct.error``/infinite work.
"""

from __future__ import annotations

import random
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.logarithmic import LogarithmicBrc
from repro.errors import ReproError
from repro.exec.dispatch import HINT_AUTO, STRATEGIES, normalize_hint
from repro.protocol import (
    RsseServer,
    SearchRequest,
    UploadIndex,
    parse_frame,
    parse_message,
)
from repro.protocol.messages import MultiSearchRequest, MultiSearchResponse


class TestParserFuzz:
    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_random_bytes_never_crash_parser(self, blob):
        try:
            parse_message(blob)
        except ReproError:
            pass  # the only acceptable failure mode

    @given(st.binary(min_size=5, max_size=200), st.data())
    @settings(max_examples=100)
    def test_mutated_valid_frames(self, garbage, data):
        frame = bytearray(SearchRequest(1, "sse", [b"t" * 32]).to_frame())
        pos = data.draw(st.integers(0, len(frame) - 1))
        frame[pos] ^= data.draw(st.integers(1, 255))
        try:
            parse_message(bytes(frame))
        except ReproError:
            pass

    @given(st.binary(max_size=64))
    @settings(max_examples=100)
    def test_parse_frame_contract(self, blob):
        try:
            tag, body = parse_frame(blob)
        except ReproError:
            return
        assert isinstance(tag, int) and isinstance(body, bytes)


class TestServerFuzz:
    @given(st.binary(max_size=300))
    @settings(max_examples=150)
    def test_server_survives_garbage(self, blob):
        server = RsseServer()
        try:
            server.handle(blob)
        except ReproError:
            pass

    @given(st.lists(st.binary(min_size=1, max_size=64), max_size=4))
    @settings(max_examples=100)
    def test_server_rejects_malformed_tokens_cleanly(self, tokens):
        server = RsseServer()
        scheme = LogarithmicBrc(64, rng=random.Random(1))
        scheme.build_index([(0, 5), (1, 44)])
        server.handle(UploadIndex(1, scheme._index.to_bytes()).to_frame())
        try:
            server.handle(SearchRequest(1, "sse", tokens).to_frame())
        except ReproError:
            pass

    @given(st.binary(max_size=80))
    @settings(max_examples=150)
    def test_garbage_hint_trailer_never_crashes_parser(self, tail):
        """Arbitrary bytes where the dispatcher-hint trailer should be
        must parse (or raise a library error) — and whatever hint comes
        out must normalize to a known lane or auto, never crash."""
        base = MultiSearchRequest(1, "sse", [[b"t" * 32]])
        tag, body = parse_frame(base.to_frame())
        forged_body = body[: -2] + tail  # replace the empty hint trailer
        forged = struct.pack(">BI", tag, len(forged_body)) + forged_body
        try:
            parsed = parse_message(forged)
        except ReproError:
            return
        hint = normalize_hint(parsed.hint)
        assert hint == HINT_AUTO or hint in STRATEGIES

    @given(st.binary(max_size=64))
    @settings(max_examples=100)
    def test_server_answers_batches_with_garbage_hints(self, tail):
        """A hostile hint must degrade to auto server-side: the batch
        still executes and answers normally."""
        server = RsseServer()
        scheme = LogarithmicBrc(64, rng=random.Random(1))
        scheme.build_index([(0, 5), (1, 44)])
        server.handle(UploadIndex(1, scheme._index.to_bytes()).to_frame())
        token = scheme.trapdoor(0, 63)
        base = MultiSearchRequest(1, "sse", [token.wire_tokens()])
        tag, body = parse_frame(base.to_frame())
        forged_body = body[: -2] + tail
        forged = struct.pack(">BI", tag, len(forged_body)) + forged_body
        try:
            response_frame = server.handle(forged)
        except ReproError:
            return
        response = parse_message(response_frame)
        assert isinstance(response, MultiSearchResponse)
        assert len(response.results) == 1
        assert server.last_dispatch_hint == HINT_AUTO or (
            server.last_dispatch_hint in STRATEGIES
        )

    def test_hint_round_trips_for_known_lanes(self):
        for hint in list(STRATEGIES) + [HINT_AUTO, ""]:
            message = MultiSearchRequest(3, "dprf", [[b"s" * 33]], hint)
            assert parse_message(message.to_frame()) == message

    def test_overlong_hint_truncates_never_crashes(self):
        message = MultiSearchRequest(3, "sse", [[b"t" * 32]], "z" * 500)
        parsed = parse_message(message.to_frame())
        assert len(parsed.hint) <= 64
        assert normalize_hint(parsed.hint) == HINT_AUTO

    def test_dprf_token_with_huge_level_is_bounded(self):
        """A forged DPRF token cannot make the server expand 2^255
        leaves: levels are a single byte and capped by cost = 2^level
        — verify a large-but-parseable one is either rejected or
        completes against an empty index within the byte's range."""
        server = RsseServer()
        server.handle(UploadIndex(1, b"").to_frame())
        # level 16 = 65k expansions: bounded, completes, finds nothing.
        frame = SearchRequest(1, "dprf", [b"s" * 32 + bytes([16])]).to_frame()
        from repro.protocol.messages import parse_message as pm

        response = pm(server.handle(frame))
        assert response.payloads == []
