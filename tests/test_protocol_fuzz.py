"""Fuzzing the protocol parser and server with hostile bytes.

A server on the network boundary must treat every inbound frame as
attacker-controlled.  These tests feed random and mutated frames to the
parser and the server and require the library's own exceptions — never
unhandled ``IndexError``/``struct.error``/infinite work.
"""

from __future__ import annotations

import random
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.logarithmic import LogarithmicBrc
from repro.errors import ReproError
from repro.exec.dispatch import HINT_AUTO, STRATEGIES, normalize_hint
from repro.protocol import (
    RsseServer,
    SearchRequest,
    UploadIndex,
    parse_frame,
    parse_message,
)
from repro.protocol.messages import MultiSearchRequest, MultiSearchResponse


class TestParserFuzz:
    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_random_bytes_never_crash_parser(self, blob):
        try:
            parse_message(blob)
        except ReproError:
            pass  # the only acceptable failure mode

    @given(st.binary(min_size=5, max_size=200), st.data())
    @settings(max_examples=100)
    def test_mutated_valid_frames(self, garbage, data):
        frame = bytearray(SearchRequest(1, "sse", [b"t" * 32]).to_frame())
        pos = data.draw(st.integers(0, len(frame) - 1))
        frame[pos] ^= data.draw(st.integers(1, 255))
        try:
            parse_message(bytes(frame))
        except ReproError:
            pass

    @given(st.binary(max_size=64))
    @settings(max_examples=100)
    def test_parse_frame_contract(self, blob):
        try:
            tag, body = parse_frame(blob)
        except ReproError:
            return
        assert isinstance(tag, int) and isinstance(body, bytes)


class TestServerFuzz:
    @given(st.binary(max_size=300))
    @settings(max_examples=150)
    def test_server_survives_garbage(self, blob):
        server = RsseServer()
        try:
            server.handle(blob)
        except ReproError:
            pass

    @given(st.lists(st.binary(min_size=1, max_size=64), max_size=4))
    @settings(max_examples=100)
    def test_server_rejects_malformed_tokens_cleanly(self, tokens):
        server = RsseServer()
        scheme = LogarithmicBrc(64, rng=random.Random(1))
        scheme.build_index([(0, 5), (1, 44)])
        server.handle(UploadIndex(1, scheme._index.to_bytes()).to_frame())
        try:
            server.handle(SearchRequest(1, "sse", tokens).to_frame())
        except ReproError:
            pass

    @given(st.binary(max_size=80))
    @settings(max_examples=150)
    def test_garbage_hint_trailer_never_crashes_parser(self, tail):
        """Arbitrary bytes where the dispatcher-hint trailer should be
        must parse (or raise a library error) — and whatever hint comes
        out must normalize to a known lane or auto, never crash."""
        base = MultiSearchRequest(1, "sse", [[b"t" * 32]])
        tag, body = parse_frame(base.to_frame())
        forged_body = body[: -2] + tail  # replace the empty hint trailer
        forged = struct.pack(">BI", tag, len(forged_body)) + forged_body
        try:
            parsed = parse_message(forged)
        except ReproError:
            return
        hint = normalize_hint(parsed.hint)
        assert hint == HINT_AUTO or hint in STRATEGIES

    @given(st.binary(max_size=64))
    @settings(max_examples=100)
    def test_server_answers_batches_with_garbage_hints(self, tail):
        """A hostile hint must degrade to auto server-side: the batch
        still executes and answers normally."""
        server = RsseServer()
        scheme = LogarithmicBrc(64, rng=random.Random(1))
        scheme.build_index([(0, 5), (1, 44)])
        server.handle(UploadIndex(1, scheme._index.to_bytes()).to_frame())
        token = scheme.trapdoor(0, 63)
        base = MultiSearchRequest(1, "sse", [token.wire_tokens()])
        tag, body = parse_frame(base.to_frame())
        forged_body = body[: -2] + tail
        forged = struct.pack(">BI", tag, len(forged_body)) + forged_body
        try:
            response_frame = server.handle(forged)
        except ReproError:
            return
        response = parse_message(response_frame)
        assert isinstance(response, MultiSearchResponse)
        assert len(response.results) == 1
        assert server.last_dispatch_hint == HINT_AUTO or (
            server.last_dispatch_hint in STRATEGIES
        )

    def test_hint_round_trips_for_known_lanes(self):
        for hint in list(STRATEGIES) + [HINT_AUTO, ""]:
            message = MultiSearchRequest(3, "dprf", [[b"s" * 33]], hint)
            assert parse_message(message.to_frame()) == message

    def test_overlong_hint_truncates_never_crashes(self):
        message = MultiSearchRequest(3, "sse", [[b"t" * 32]], "z" * 500)
        parsed = parse_message(message.to_frame())
        assert len(parsed.hint) <= 64
        assert normalize_hint(parsed.hint) == HINT_AUTO

    def test_undecodable_frame_returns_typed_error(self):
        """Unknown tags and garbage frames answer an ErrorResponse
        instead of raising — the contract that keeps a network client
        from waiting on a reply that isn't coming."""
        from repro.protocol.messages import ErrorResponse, parse_message as pm

        server = RsseServer()
        for hostile in (
            b"\x63" + (1).to_bytes(4, "big") + b"x",  # unknown tag
            b"",  # no header at all
            b"\x03\x00\x00",  # truncated header
        ):
            response = server.handle(hostile)
            assert response is not None
            assert isinstance(pm(response), ErrorResponse)

    def test_handle_request_always_answers(self):
        """handle_request is total: writes ack, errors frame, nothing
        is silent."""
        from repro.protocol.messages import (
            ErrorResponse,
            OkResponse,
            parse_message as pm,
        )

        server = RsseServer()
        ok = server.handle_request(UploadIndex(1, b"").to_frame())
        assert isinstance(pm(ok), OkResponse)
        err = server.handle_request(
            SearchRequest(99, "sse", [b"t" * 32]).to_frame()
        )
        assert isinstance(pm(err), ErrorResponse)
        assert pm(err).code == "index-state"

    def test_dprf_token_with_huge_level_is_bounded(self):
        """A forged DPRF token cannot make the server expand 2^255
        leaves: levels are a single byte and capped by cost = 2^level
        — verify a large-but-parseable one is either rejected or
        completes against an empty index within the byte's range."""
        server = RsseServer()
        server.handle(UploadIndex(1, b"").to_frame())
        # level 16 = 65k expansions: bounded, completes, finds nothing.
        frame = SearchRequest(1, "dprf", [b"s" * 32 + bytes([16])]).to_frame()
        from repro.protocol.messages import parse_message as pm

        response = pm(server.handle(frame))
        assert response.payloads == []


# ---------------------------------------------------------------------------
# The socket layer: hostile byte streams against a live RsseNetServer
# ---------------------------------------------------------------------------


class TestSocketFuzz:
    """Hostile TCP clients must never crash the server or poison the
    sessions of honest clients sharing it."""

    @pytest.fixture()
    def live_server(self):
        from repro.net import serve_in_thread

        server = RsseServer()
        scheme = LogarithmicBrc(64, rng=random.Random(1))
        scheme.build_index([(0, 5), (1, 44), (2, 12)])
        server.handle(UploadIndex(1, scheme._index.to_bytes()).to_frame())
        with serve_in_thread(server, max_frame_bytes=1 << 20) as handle:
            yield handle, scheme

    @staticmethod
    def _raw_exchange(port: int, payload: bytes) -> bytes:
        """Write hostile bytes, return whatever the server answers
        before closing (possibly nothing)."""
        import socket as socketlib

        with socketlib.create_connection(("127.0.0.1", port), timeout=5) as sock:
            sock.sendall(payload)
            sock.shutdown(socketlib.SHUT_WR)
            sock.settimeout(5)
            received = b""
            try:
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    received += chunk
            except OSError:
                pass
            return received

    def _healthy_query_works(self, handle, scheme) -> None:
        from repro.net import NetTransport
        from repro.protocol.messages import parse_message as pm

        token = scheme.trapdoor(0, 63)
        with NetTransport("127.0.0.1", handle.port, retries=1) as transport:
            response = pm(
                transport(
                    SearchRequest(
                        1, token.wire_kind, token.wire_tokens()
                    ).to_frame()
                )
            )
        assert len(response.payloads) == 3

    def test_truncated_header_then_disconnect(self, live_server):
        handle, scheme = live_server
        self._raw_exchange(handle.port, b"\x03\x00")
        self._healthy_query_works(handle, scheme)

    def test_mid_frame_disconnect(self, live_server):
        handle, scheme = live_server
        # Header promises 100 body bytes; only 10 ever arrive.
        self._raw_exchange(
            handle.port, struct.pack(">BI", 3, 100) + b"x" * 10
        )
        self._healthy_query_works(handle, scheme)

    def test_oversized_frame_rejected_with_typed_error(self, live_server):
        from repro.protocol.messages import ErrorResponse, parse_message as pm

        handle, scheme = live_server
        answer = self._raw_exchange(
            handle.port, struct.pack(">BI", 3, 1 << 30)
        )
        assert answer, "oversized header must be answered, not ignored"
        error = pm(answer)
        assert isinstance(error, ErrorResponse)
        assert error.code == "framing"
        assert handle.stats().framing_errors >= 1
        self._healthy_query_works(handle, scheme)

    def test_unknown_tag_stream_rejected(self, live_server):
        from repro.protocol.messages import ErrorResponse, parse_message as pm

        handle, scheme = live_server
        answer = self._raw_exchange(handle.port, b"\xff" * 32)
        assert answer and isinstance(pm(answer), ErrorResponse)
        self._healthy_query_works(handle, scheme)

    def test_random_garbage_streams_never_poison_the_server(self, live_server):
        handle, scheme = live_server
        rng = random.Random(0xF00D)
        for _ in range(10):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 200)))
            self._raw_exchange(handle.port, blob)
        self._healthy_query_works(handle, scheme)

    def test_valid_frames_with_hostile_tail(self, live_server):
        """A connection that behaves, then turns hostile: the valid
        prefix is answered before the stream is condemned."""
        from repro.protocol.messages import SearchResponse, parse_message as pm

        from repro.net import FrameReader

        handle, scheme = live_server
        token = scheme.trapdoor(0, 63)
        good = SearchRequest(1, token.wire_kind, token.wire_tokens()).to_frame()
        answer = self._raw_exchange(handle.port, good + b"\xff" * 16)
        # First frame answered; the garbage tail then closes the stream
        # (with a trailing typed error riding behind the real reply).
        frames = FrameReader().feed(answer)
        assert frames and isinstance(pm(frames[0]), SearchResponse)
        self._healthy_query_works(handle, scheme)


class TestTraceTrailerFuzz:
    """The PR-8 trace trailer rides *behind* the dispatch-hint trailer
    and must obey the same contract: hostile bytes degrade to "no
    trace", never to a crash, and trace-less frames are byte-identical
    to the pre-trace wire format."""

    def _base(self, hint: str = "", trace: str = "") -> MultiSearchRequest:
        return MultiSearchRequest(1, "sse", [[b"t" * 32]], hint, trace)

    def test_traceless_frame_has_no_trace_trailer(self):
        """An empty trace adds zero bytes: the body ends at the hint
        trailer exactly as it did before traces existed."""
        _, with_hint = parse_frame(self._base(hint="brc").to_frame())
        assert with_hint.endswith(b"\x00\x03brc")
        _, bare = parse_frame(self._base().to_frame())
        assert bare.endswith(b"\x00\x00")
        # Adding a trace appends exactly one length-prefixed trailer.
        _, traced = parse_frame(self._base(trace="ab12").to_frame())
        assert traced == bare + b"\x00\x04ab12"

    def test_trace_round_trips(self):
        for hint in ("", "brc", "auto"):
            tid = "0123456789abcdef"
            parsed = parse_message(self._base(hint, tid).to_frame())
            assert parsed.trace == tid
            assert parsed.hint == hint

    def test_absent_trace_parses_as_empty(self):
        parsed = parse_message(self._base(hint="urc").to_frame())
        assert parsed.trace == ""
        assert parsed.hint == "urc"

    def test_overlong_trace_truncates_never_crashes(self):
        parsed = parse_message(self._base(trace="x" * 300).to_frame())
        assert parsed.trace == "x" * 64  # MAX_TRACE_LEN cap

    @given(st.binary(max_size=96))
    @settings(max_examples=150)
    def test_garbage_trace_trailer_never_crashes_parser(self, tail):
        """Arbitrary bytes where the trace trailer should be must parse
        (or raise a library error); the hint in front of them survives
        untouched and whatever trace comes out is a bounded string."""
        base = self._base(hint="brc", trace="deadbeefdeadbeef")
        tag, body = parse_frame(base.to_frame())
        forged_body = body[:-18] + tail  # strip the 2+16B trace trailer
        forged = struct.pack(">BI", tag, len(forged_body)) + forged_body
        try:
            parsed = parse_message(forged)
        except ReproError:
            return
        assert parsed.hint == "brc"
        assert isinstance(parsed.trace, str)
        assert len(parsed.trace) <= 64

    @given(st.binary(max_size=64))
    @settings(max_examples=100)
    def test_server_answers_batches_with_garbage_trace(self, tail):
        """A hostile trace trailer is an opaque id at worst: the batch
        executes and answers normally, and the server never buffers
        more than one trace for it."""
        server = RsseServer()
        scheme = LogarithmicBrc(64, rng=random.Random(1))
        scheme.build_index([(0, 5), (1, 44)])
        server.handle(UploadIndex(1, scheme._index.to_bytes()).to_frame())
        token = scheme.trapdoor(0, 63)
        base = MultiSearchRequest(1, "sse", [token.wire_tokens()], "", "feed")
        tag, body = parse_frame(base.to_frame())
        forged_body = body[:-6] + tail  # strip the 2+4B trace trailer
        forged = struct.pack(">BI", tag, len(forged_body)) + forged_body
        try:
            response_frame = server.handle(forged)
        except ReproError:
            return
        response = parse_message(response_frame)
        assert isinstance(response, MultiSearchResponse)
        assert len(response.results) == 1
        assert len(server.tracer) <= 1

    def test_hint_and_trace_coexist_on_the_wire(self):
        parsed = parse_message(self._base("constant-src", "cafe" * 4).to_frame())
        assert parsed.hint == "constant-src"
        assert parsed.trace == "cafe" * 4
