"""Tests for the prior-work comparison experiment."""

from __future__ import annotations

from repro.harness.baseline_comparison import compare_baselines
from repro.harness.cli import run_experiment


class TestComparison:
    def test_rows_and_ordering(self):
        rows = {r.approach.split(" ")[0]: r for r in compare_baselines(
            n=300, domain=1 << 12, query_count=4, seed=5
        )}
        assert set(rows) == {"rsse", "ope", "det"}
        # The paper's trade-off, measured: RSSE pays storage…
        assert rows["rsse"].index_bytes > rows["ope"].index_bytes
        # …and the baselines pay privacy.
        assert rows["ope"].order_leak_correlation > 0.99
        assert rows["rsse"].order_leak_correlation == 0.0
        assert rows["ope"].histogram_disclosed
        assert rows["det"].histogram_disclosed
        assert not rows["rsse"].histogram_disclosed

    def test_ope_exactness_vs_det_fps(self):
        rows = {r.approach.split(" ")[0]: r for r in compare_baselines(
            n=300, domain=1 << 12, query_count=4, seed=6
        )}
        assert rows["ope"].avg_false_positives == 0.0
        assert rows["det"].avg_false_positives >= 0.0

    def test_cli_rendering(self):
        out = run_experiment("compare-baselines")
        assert "rsse" in out and "ope" in out and "histogram" in out
