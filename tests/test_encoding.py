"""Unit tests for the canonical byte encodings."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import TokenError
from repro.sse.encoding import (
    ID_LEN,
    TRIPLE_LEN,
    decode_id,
    decode_record,
    decode_triple,
    encode_counter,
    encode_id,
    encode_record,
    encode_triple,
    range_keyword,
    value_keyword,
)


class TestIds:
    @given(st.integers(0, (1 << 64) - 1))
    def test_round_trip(self, doc_id):
        assert decode_id(encode_id(doc_id)) == doc_id

    def test_fixed_length(self):
        assert len(encode_id(0)) == len(encode_id((1 << 64) - 1)) == ID_LEN

    @pytest.mark.parametrize("bad", [-1, 1 << 64])
    def test_out_of_range(self, bad):
        with pytest.raises(ValueError):
            encode_id(bad)

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(TokenError):
            decode_id(b"\x00" * 7)


class TestTriples:
    @given(st.integers(0, 1 << 40), st.integers(0, 1 << 30), st.integers(0, 1 << 30))
    def test_round_trip(self, value, lo, hi):
        assert decode_triple(encode_triple(value, lo, hi)) == (value, lo, hi)

    def test_fixed_length(self):
        assert len(encode_triple(1, 2, 3)) == TRIPLE_LEN

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(TokenError):
            decode_triple(b"\x00" * 23)


class TestRecords:
    @given(st.integers(0, 1 << 60), st.integers(0, 1 << 60))
    def test_round_trip(self, doc_id, value):
        assert decode_record(encode_record(doc_id, value)) == (doc_id, value)

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(TokenError):
            decode_record(b"\x00" * 15)


class TestKeywords:
    def test_value_keywords_distinct(self):
        assert value_keyword(1) != value_keyword(2)

    def test_range_keywords_distinct(self):
        assert range_keyword(0, 5) != range_keyword(0, 6) != range_keyword(1, 6)

    def test_namespaces_disjoint(self):
        # A value keyword can never collide with a range keyword.
        assert value_keyword(1)[:2] != range_keyword(1, 1)[:2]

    def test_counter_monotone_encoding(self):
        assert encode_counter(1) != encode_counter(2)
        assert len(encode_counter(0)) == 8
