"""The live-ingest wire path: update frames and server-managed stores.

Covers the frame codecs (tags 19-23), the in-process managed-store
lifecycle on :class:`~repro.protocol.RsseServer` (open / update /
search / drop, idempotent re-open, typed errors), and the ``updates.*``
metrics instruments.
"""

from __future__ import annotations

import pytest

from repro.errors import TokenError
from repro.obs.registry import MetricsRegistry
from repro.protocol import (
    DropIndex,
    ErrorResponse,
    OkResponse,
    RsseServer,
    StoreOpenRequest,
    StoreSearchRequest,
    StoreSearchResponse,
    UpdateBatchRequest,
    UpdateRequest,
    parse_frame,
    parse_message,
)
from repro.updates.batch import delete, insert


def _reply(server: RsseServer, message):
    return parse_message(server.handle_request(message.to_frame()))


class TestFrameCodecs:
    def test_store_open_round_trip(self):
        message = StoreOpenRequest(7, 1 << 20, ("logarithmic-brc",), 3)
        assert parse_message(message.to_frame()) == message

    def test_store_open_multi_scheme_round_trip(self):
        message = StoreOpenRequest(
            7, 1 << 10, ("logarithmic-brc", "constant-brc", "quadratic")
        )
        assert parse_message(message.to_frame()) == message

    def test_store_open_without_schemes_rejected(self):
        tag, body = parse_frame(StoreOpenRequest(7, 64, ("x",)).to_frame())
        with pytest.raises(TokenError):
            StoreOpenRequest.from_body(body[:20])

    def test_update_round_trip(self):
        for op in (insert(5, 123), delete((1 << 62) + 3, (1 << 60))):
            message = UpdateRequest(9, op)
            assert parse_message(message.to_frame()) == message

    def test_update_batch_round_trip(self):
        ops = tuple(insert(i, i * 7) for i in range(10)) + (delete(3, 21),)
        message = UpdateBatchRequest(9, ops)
        assert parse_message(message.to_frame()) == message

    def test_empty_batch_round_trips(self):
        message = UpdateBatchRequest(9, ())
        assert parse_message(message.to_frame()) == message

    def test_batch_trace_trailer_round_trips(self):
        traced = UpdateBatchRequest(9, (insert(1, 2),), "cafe" * 4)
        assert parse_message(traced.to_frame()).trace == "cafe" * 4
        # Trace-less frames carry zero trailer bytes (wire compat).
        bare = UpdateBatchRequest(9, (insert(1, 2),))
        _, bare_body = parse_frame(bare.to_frame())
        _, traced_body = parse_frame(traced.to_frame())
        assert traced_body == bare_body + b"\x00\x10" + b"cafe" * 4

    def test_store_search_round_trip(self):
        message = StoreSearchRequest(4, 100, 2000, "deadbeef")
        assert parse_message(message.to_frame()) == message
        assert parse_message(StoreSearchRequest(4, 0, 0).to_frame()).trace == ""

    def test_store_search_response_round_trip_and_sorting(self):
        message = StoreSearchResponse((9, 1, 5), rounds=3, scheme="quadratic")
        parsed = parse_message(message.to_frame())
        assert parsed.ids == (1, 5, 9)  # canonical order on the wire
        assert parsed.rounds == 3
        assert parsed.scheme == "quadratic"

    def test_store_search_response_frames_are_order_insensitive(self):
        a = StoreSearchResponse((3, 1, 2), rounds=1, scheme="s")
        b = StoreSearchResponse((2, 3, 1), rounds=1, scheme="s")
        assert a.to_frame() == b.to_frame()

    def test_store_search_response_truncation_rejected(self):
        tag, body = parse_frame(
            StoreSearchResponse((1, 2, 3), rounds=1, scheme="brc").to_frame()
        )
        for cut in (1, 5, len(body) - 1):
            with pytest.raises(TokenError):
                StoreSearchResponse.from_body(body[:cut])


class TestManagedStoreLifecycle:
    def _open(self, server, index_id=11, **overrides):
        kwargs = {
            "domain_size": 1 << 12,
            "schemes": ("logarithmic-brc",),
            "consolidation_step": 2,
        }
        kwargs.update(overrides)
        return _reply(
            server,
            StoreOpenRequest(
                index_id,
                kwargs["domain_size"],
                kwargs["schemes"],
                kwargs["consolidation_step"],
            ),
        )

    def test_open_update_search_drop(self):
        server = RsseServer()
        assert isinstance(self._open(server), OkResponse)
        ack = _reply(
            server,
            UpdateBatchRequest(
                11, tuple(insert(i, (i * 37) % (1 << 12)) for i in range(30))
            ),
        )
        assert isinstance(ack, OkResponse)
        answer = _reply(server, StoreSearchRequest(11, 0, 1 << 11))
        assert isinstance(answer, StoreSearchResponse)
        expected = sorted(
            i for i in range(30) if (i * 37) % (1 << 12) <= (1 << 11)
        )
        assert list(answer.ids) == expected
        assert answer.scheme == "logarithmic-brc"
        assert isinstance(_reply(server, DropIndex(11)), OkResponse)
        # Handle is gone: the next search is a typed state error.
        gone = _reply(server, StoreSearchRequest(11, 0, 5))
        assert isinstance(gone, ErrorResponse) and gone.code == "index-state"

    def test_single_op_fast_path(self):
        server = RsseServer()
        self._open(server)
        assert isinstance(
            _reply(server, UpdateRequest(11, insert(1, 500))), OkResponse
        )
        assert isinstance(
            _reply(server, UpdateRequest(11, delete(1, 500))), OkResponse
        )
        answer = _reply(server, StoreSearchRequest(11, 0, (1 << 12) - 1))
        assert answer.ids == ()

    def test_reopen_same_parameters_is_idempotent(self):
        server = RsseServer()
        self._open(server)
        _reply(server, UpdateRequest(11, insert(7, 99)))
        assert isinstance(self._open(server), OkResponse)  # reconnecting client
        answer = _reply(server, StoreSearchRequest(11, 0, (1 << 12) - 1))
        assert answer.ids == (7,)  # state survived the re-open

    def test_reopen_with_different_parameters_rejected(self):
        server = RsseServer()
        self._open(server)
        for overrides in (
            {"domain_size": 1 << 8},
            {"schemes": ("quadratic",)},
            {"consolidation_step": 5},
        ):
            response = self._open(server, **overrides)
            assert isinstance(response, ErrorResponse)
            assert response.code == "index-state"

    def test_unknown_scheme_name_is_typed_error(self):
        server = RsseServer()
        response = self._open(server, schemes=("not-a-scheme",))
        assert isinstance(response, ErrorResponse)
        assert response.code == "index-state"
        assert "not-a-scheme" in response.message

    def test_update_without_open_is_typed_error(self):
        server = RsseServer()
        response = _reply(server, UpdateRequest(404, insert(1, 2)))
        assert isinstance(response, ErrorResponse)
        assert response.code == "index-state"

    def test_hybrid_store_dispatches(self):
        server = RsseServer()
        self._open(
            server, schemes=("logarithmic-brc", "constant-brc"), domain_size=1 << 10
        )
        _reply(
            server,
            UpdateBatchRequest(
                11, tuple(insert(i, (i * 13) % (1 << 10)) for i in range(40))
            ),
        )
        answer = _reply(server, StoreSearchRequest(11, 0, 1 << 9))
        assert answer.scheme in {"logarithmic-brc", "constant-brc"}
        expected = sorted(
            i for i in range(40) if (i * 13) % (1 << 10) <= (1 << 9)
        )
        assert list(answer.ids) == expected

    def test_stats_report_stores(self):
        server = RsseServer()
        self._open(server)
        _reply(server, UpdateBatchRequest(11, (insert(1, 2), insert(3, 4))))
        stores = server.stats_dict()["stores"]
        assert stores["11"]["schemes"] == ["logarithmic-brc"]
        assert stores["11"]["active_indexes"] >= 1

    def test_drop_clears_backend_slice(self):
        server = RsseServer()
        self._open(server)
        _reply(server, UpdateBatchRequest(11, (insert(1, 2),)))
        assert any(
            ns.startswith("store11/") for ns in server._backend.namespaces()
        )
        _reply(server, DropIndex(11))
        assert not any(
            ns.startswith("store11/") for ns in server._backend.namespaces()
        )


class TestUpdateMetrics:
    def test_counters_land_in_private_registry(self):
        server = RsseServer()
        server.metrics_registry = registry = MetricsRegistry(enabled=True)
        _reply(server, StoreOpenRequest(5, 1 << 10, ("logarithmic-brc",), 2))
        _reply(
            server,
            UpdateBatchRequest(5, tuple(insert(i, i) for i in range(8))),
        )
        _reply(server, UpdateRequest(5, insert(100, 100)))
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["updates.applied"] == 9
        assert counters["updates.batches"] == 2
        # step=2 and 2 batches: at least one consolidation has happened.
        assert counters.get("updates.consolidations", 0) >= 1
