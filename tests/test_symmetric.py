"""Unit tests for the semantic (randomized, authenticated) cipher."""

from __future__ import annotations

import random

import pytest

from repro.crypto.prf import generate_key
from repro.crypto.symmetric import NONCE_LEN, TAG_LEN, SemanticCipher, active_backend
from repro.errors import IntegrityError, KeyError_

KEY = generate_key(random.Random(1))


@pytest.fixture
def cipher():
    return SemanticCipher(KEY)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "plaintext",
        [b"", b"a", b"hello world", bytes(range(256)), b"x" * 10_000],
    )
    def test_round_trip(self, cipher, plaintext):
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

    def test_randomized(self, cipher):
        assert cipher.encrypt(b"same") != cipher.encrypt(b"same")

    def test_overhead_exact(self, cipher):
        assert len(cipher.encrypt(b"abc")) == 3 + cipher.overhead
        assert cipher.overhead == NONCE_LEN + TAG_LEN

    def test_unauthenticated_overhead(self):
        c = SemanticCipher(KEY, authenticated=False)
        assert c.overhead == NONCE_LEN
        assert c.decrypt(c.encrypt(b"abc")) == b"abc"

    def test_injected_rng_reproducible(self):
        c1 = SemanticCipher(KEY, rng=random.Random(9))
        c2 = SemanticCipher(KEY, rng=random.Random(9))
        assert c1.encrypt(b"m") == c2.encrypt(b"m")


class TestKeySeparation:
    def test_wrong_key_fails_auth(self):
        good = SemanticCipher(KEY)
        bad = SemanticCipher(generate_key(random.Random(2)))
        with pytest.raises(IntegrityError):
            bad.decrypt(good.encrypt(b"secret"))

    def test_rejects_bad_key(self):
        with pytest.raises(KeyError_):
            SemanticCipher(b"short")


class TestTampering:
    def test_flipped_ct_byte_detected(self, cipher):
        blob = bytearray(cipher.encrypt(b"payload"))
        blob[NONCE_LEN] ^= 0x01
        with pytest.raises(IntegrityError):
            cipher.decrypt(bytes(blob))

    def test_flipped_tag_byte_detected(self, cipher):
        blob = bytearray(cipher.encrypt(b"payload"))
        blob[-1] ^= 0x01
        with pytest.raises(IntegrityError):
            cipher.decrypt(bytes(blob))

    def test_flipped_nonce_detected(self, cipher):
        blob = bytearray(cipher.encrypt(b"payload"))
        blob[0] ^= 0x01
        with pytest.raises(IntegrityError):
            cipher.decrypt(bytes(blob))

    def test_truncated_blob_detected(self, cipher):
        with pytest.raises(IntegrityError):
            cipher.decrypt(cipher.encrypt(b"payload")[: NONCE_LEN + 2])

    def test_empty_blob_detected(self, cipher):
        with pytest.raises(IntegrityError):
            cipher.decrypt(b"")

    def test_unauthenticated_mode_does_not_detect(self):
        # Documented trade-off: without the MAC, tampering silently
        # corrupts the plaintext instead of raising.
        c = SemanticCipher(KEY, authenticated=False)
        blob = bytearray(c.encrypt(b"payload"))
        blob[NONCE_LEN] ^= 0x01
        assert c.decrypt(bytes(blob)) != b"payload"


class TestBackend:
    def test_backend_reported(self):
        assert active_backend() in ("aes-ctr", "hmac-ctr")
