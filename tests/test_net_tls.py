"""TLS on the network seam: the framed protocol over an encrypted stream.

The fixtures in ``tests/data/tls/`` are a long-lived self-signed
certificate for ``localhost``/``127.0.0.1`` (generated once, committed —
no openssl dependency at test time).  Framing and the protocol are
byte-identical over TLS; only the transport under them changes, so the
full owner flow (outsource, query, stats) must behave exactly as on
plaintext TCP.
"""

from __future__ import annotations

import pathlib
import random
import ssl

import pytest

from repro.baselines.plaintext import PlaintextRangeIndex
from repro.core.registry import make_scheme
from repro.errors import TransportError
from repro.net import NetTransport, serve_in_thread
from repro.protocol import RemoteRangeClient, RsseServer

_TLS_DIR = pathlib.Path(__file__).parent / "data" / "tls"
CERT = _TLS_DIR / "cert.pem"
KEY = _TLS_DIR / "key.pem"


def _server_context() -> ssl.SSLContext:
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    context.load_cert_chain(CERT, KEY)
    return context


def _client_context() -> ssl.SSLContext:
    # Trust exactly the test certificate, nothing else — a real client
    # pins its server the same way.
    context = ssl.create_default_context(cafile=str(CERT))
    return context


def test_full_protocol_over_tls():
    rng = random.Random(5)
    domain = 1 << 12
    records = [(i, rng.randrange(domain)) for i in range(60)]
    oracle = PlaintextRangeIndex(records)
    scheme = make_scheme("logarithmic-brc", domain, rng=random.Random(6))
    with serve_in_thread(RsseServer(), ssl=_server_context()) as server:
        with NetTransport(
            "127.0.0.1", server.port, ssl=_client_context()
        ) as transport:
            client = RemoteRangeClient(scheme, transport, rng=rng)
            client.outsource(records)
            for _ in range(8):
                lo = rng.randrange(domain)
                hi = rng.randrange(lo, domain)
                assert client.query(lo, hi) == frozenset(
                    oracle.query(lo, hi)
                )
            stats = transport.stats()
            assert stats["net"]["frames_in"] > 0


def test_plaintext_client_rejected_by_tls_server():
    with serve_in_thread(RsseServer(), ssl=_server_context()) as server:
        # The TCP connect itself succeeds (the server is still waiting
        # for a ClientHello at that point); the failure surfaces on the
        # first request, when the server kills the botched handshake.
        with NetTransport(
            "127.0.0.1", server.port, retries=0, timeout_s=3.0
        ) as transport:
            with pytest.raises(TransportError):
                transport.stats()


def test_untrusted_cert_rejected():
    anonymous = ssl.create_default_context()  # system roots only
    anonymous.check_hostname = False
    with serve_in_thread(RsseServer(), ssl=_server_context()) as server:
        with pytest.raises(TransportError):
            NetTransport(
                "127.0.0.1",
                server.port,
                ssl=anonymous,
                retries=0,
                timeout_s=3.0,
            )
