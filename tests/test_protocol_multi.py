"""Multi-query wire frames: one search request per batch.

Frame-level round-trips for ``MultiSearchRequest``/``MultiSearchResponse``
plus the acceptance assertion of the batched protocol: a counting
transport proves ``query_many`` ships exactly one search frame per batch
(two for the interactive SRC-i — one per protocol round), and batched
answers equal the plaintext oracle for every wire-capable scheme.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.plaintext import PlaintextRangeIndex
from repro.core.registry import make_scheme
from repro.protocol import messages as msg
from repro.protocol.client import RemoteRangeClient
from repro.protocol.server import RsseServer

REMOTE_SCHEMES = (
    "quadratic",
    "constant-brc",
    "constant-urc",
    "logarithmic-brc",
    "logarithmic-urc",
    "logarithmic-src",
    "logarithmic-src-i",
)

RANGES = ((5, 30), (40, 55), (10, 12), (0, 63))


class CountingTransport:
    """In-process transport tallying frames by type."""

    def __init__(self, server: RsseServer) -> None:
        self._server = server
        self.search = 0
        self.multi_search = 0
        self.fetch = 0
        self.total = 0

    def __call__(self, frame: bytes):
        self.total += 1
        message = msg.parse_message(frame)
        if isinstance(message, msg.SearchRequest):
            self.search += 1
        elif isinstance(message, msg.MultiSearchRequest):
            self.multi_search += 1
        elif isinstance(message, msg.FetchRequest):
            self.fetch += 1
        return self._server.handle(frame)

    def reset(self) -> None:
        self.search = self.multi_search = self.fetch = self.total = 0


class TestFrameRoundTrips:
    def test_multi_search_request_roundtrip(self):
        original = msg.MultiSearchRequest(
            7, "sse", [[b"tok-a", b"tok-b"], [], [b"tok-c"]]
        )
        parsed = msg.parse_message(original.to_frame())
        assert parsed == original

    def test_multi_search_request_dprf_kind(self):
        original = msg.MultiSearchRequest(1, "dprf", [[b"s" * 33]])
        parsed = msg.parse_message(original.to_frame())
        assert parsed.kind == "dprf"
        assert parsed.queries == [[b"s" * 33]]

    def test_multi_search_response_roundtrip(self):
        original = msg.MultiSearchResponse([[b"p1", b"p2"], [], [b"p3"]])
        parsed = msg.parse_message(original.to_frame())
        assert parsed == original

    def test_empty_batch_roundtrip(self):
        assert msg.parse_message(
            msg.MultiSearchRequest(3, "sse", []).to_frame()
        ) == msg.MultiSearchRequest(3, "sse", [])
        assert msg.parse_message(
            msg.MultiSearchResponse([]).to_frame()
        ) == msg.MultiSearchResponse([])


def _client(name: str):
    domain = 64 if name == "quadratic" else 128
    kwargs = {"rng": random.Random(21)}
    if name.startswith("constant"):
        kwargs["intersection_policy"] = "allow"
    scheme = make_scheme(name, domain, **kwargs)
    transport = CountingTransport(RsseServer())
    client = RemoteRangeClient(scheme, transport, rng=random.Random(22))
    records = [(i, (i * 13) % domain) for i in range(80)]
    client.outsource(records)
    transport.reset()
    return client, transport, records


@pytest.mark.parametrize("name", REMOTE_SCHEMES)
def test_query_many_is_one_search_frame_per_batch(name):
    client, transport, records = _client(name)
    results = client.query_many(RANGES)
    oracle = PlaintextRangeIndex(records)
    for (lo, hi), ids in zip(RANGES, results):
        assert ids == frozenset(oracle.query(lo, hi))
    # THE acceptance assertion: the whole batch rode multi-search
    # frames — one per protocol round — and zero per-query frames.
    assert transport.search == 0
    expected_rounds = 2 if name == "logarithmic-src-i" else 1
    assert transport.multi_search == expected_rounds
    # ...plus at most one coalesced tuple fetch for the union.
    assert transport.fetch <= 1
    assert transport.total == transport.multi_search + transport.fetch


def test_query_many_empty_batch():
    client, transport, _ = _client("logarithmic-brc")
    assert client.query_many([]) == []
    assert transport.total == 0


def test_query_many_matches_single_queries():
    client, transport, records = _client("logarithmic-urc")
    batched = client.query_many(RANGES)
    singles = [client.query(lo, hi) for lo, hi in RANGES]
    assert batched == singles


def test_multi_search_unknown_handle_raises():
    server = RsseServer()
    from repro.errors import IndexStateError

    with pytest.raises(IndexStateError):
        server.handle(
            msg.MultiSearchRequest(999, "sse", [[b"x" * 32]]).to_frame()
        )


def test_serialized_transport_reencodes_canonically():
    """Multi frames survive a simulated socket hop byte-identically."""
    domain = 128
    scheme = make_scheme("logarithmic-brc", domain, rng=random.Random(31))
    server = RsseServer()

    def serialized(frame: bytes):
        reencoded = msg.parse_message(bytes(frame)).to_frame()
        assert reencoded == bytes(frame)
        response = server.handle(reencoded)
        if response is None:
            return None
        assert msg.parse_message(response).to_frame() == response
        return response

    client = RemoteRangeClient(scheme, serialized, rng=random.Random(32))
    records = [(i, (i * 3) % domain) for i in range(60)]
    client.outsource(records)
    oracle = PlaintextRangeIndex(records)
    for (lo, hi), ids in zip(RANGES, client.query_many(RANGES)):
        assert ids == frozenset(oracle.query(lo, hi))
