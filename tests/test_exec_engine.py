"""The query execution engine: planner, executor, expansion cache.

Covers the subsystem in isolation: plans carry the right stages and
estimates; the coalesced walk answers exactly what per-token Π_bas
searches answer (grouped, in order, on dicts and on backend-resident
indexes); DPRF runs equal the expand-then-search loop; the worker pool
changes nothing observable; the cache hits, evicts, and invalidates.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.registry import make_scheme
from repro.core.split import EncryptedDatabase
from repro.crypto.dprf import DelegationToken, GgmDprf
from repro.errors import IndexStateError, InvalidRangeError
from repro.exec import (
    ExpansionCache,
    QueryExecutor,
    configure_default_executor,
    default_executor,
    plan_dprf,
    plan_range,
    plan_sse,
)
from repro.exec.engine import ENV_WORKERS
from repro.sse.base import PrfKeyDeriver, token_from_secret
from repro.sse.pi2lev import Pi2Lev
from repro.sse.pibas import PiBas
from repro.sse.pibas import search as pibas_search
from repro.storage.backend import SqliteBackend

KEY = bytes(range(32))


def _built_index(n_keywords: int = 8, postings: int = 5, seed: int = 3):
    """A PiBas EDB plus its keyword tokens (dict-backed)."""
    sse = PiBas(PrfKeyDeriver(KEY), shuffle_rng=random.Random(seed))
    multimap = {
        b"kw%d" % k: [b"payload-%d-%d" % (k, i) for i in range(postings)]
        for k in range(n_keywords)
    }
    index = sse.build_index(multimap)
    tokens = [sse.trapdoor(b"kw%d" % k) for k in range(n_keywords)]
    return sse, index, tokens


class TestPlanner:
    def test_sse_plan_shape(self):
        _, _, tokens = _built_index(4)
        plan = plan_sse(tokens, probe_batch=16, scheme="logarithmic-brc")
        assert plan.kind == "sse"
        assert plan.executable
        assert [s.kind for s in plan.stages] == ["probe"]
        assert plan.stages[0].units == 4
        assert plan.est_leaves == 4
        assert "probe" in plan.describe()

    def test_dprf_plan_counts_leaves_and_prg_calls(self):
        tokens = [
            DelegationToken(bytes(32), 3),
            DelegationToken(bytes([1]) + bytes(31), 0),
        ]
        plan = plan_dprf(tokens, probe_batch=1)
        assert plan.kind == "dprf"
        assert [s.kind for s in plan.stages] == ["expand", "probe"]
        assert plan.est_leaves == 8 + 1
        # 2^3 - 1 internal expansions for the subtree, none for a leaf.
        assert plan.stages[0].est_cost == 7

    def test_plan_range_delegated_matches_cover(self):
        plan = plan_range(
            3, 12, cover="brc", domain_size=16, delegated=True, probe_batch=16
        )
        assert plan.kind == "dprf"
        assert plan.est_leaves == 10  # |[3,12]| values under a BRC cover
        assert not plan.executable

    def test_plan_range_tdag_src_is_single_node(self):
        plan = plan_range(2, 9, cover="tdag-src", domain_size=64)
        assert plan.kind == "sse"
        assert plan.meta["cover_nodes"] == 1

    def test_plan_range_rejects_unknown_cover(self):
        with pytest.raises(InvalidRangeError):
            plan_range(0, 1, cover="zigzag", domain_size=4)

    def test_unexecutable_plan_refused_by_engine(self):
        plan = plan_range(0, 3, cover="brc", domain_size=8)
        with pytest.raises(IndexStateError):
            QueryExecutor(workers=1).execute(plan, index=None)


class TestCoalescedWalk:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_matches_per_token_pibas_search(self, workers):
        _, index, tokens = _built_index()
        engine = QueryExecutor(workers=workers, cache=False)
        result = engine.sse_search(index, tokens)
        assert result.groups == [pibas_search(index, t) for t in tokens]
        engine.close()

    def test_deterministic_across_runs_and_widths(self):
        _, index, tokens = _built_index(6, postings=9)
        serial = QueryExecutor(workers=1, cache=False)
        pooled = QueryExecutor(workers=3, cache=False)
        assert (
            serial.sse_search(index, tokens).groups
            == pooled.sse_search(index, tokens).groups
        )
        pooled.close()

    def test_backend_resident_index(self, tmp_path):
        sse, index, tokens = _built_index(5, postings=7)
        db = EncryptedDatabase(SqliteBackend(tmp_path / "walk.sqlite"))
        db.put_index("edb", index)
        backend_index = db.get_index("edb")
        engine = QueryExecutor(workers=1, cache=False)
        result = engine.sse_search(backend_index, tokens)
        assert result.groups == [pibas_search(index, t) for t in tokens]
        # The whole batch shared rounds: far fewer rounds than walkers'
        # individual walks (7 postings each) would have paid.
        assert result.stats.probe_rounds <= 6
        assert result.stats.probes_coalesced > 0
        db.backend.close()

    def test_empty_token_list(self):
        _, index, _ = _built_index(2)
        result = QueryExecutor(workers=1).sse_search(index, [])
        assert result.groups == []
        assert result.stats.probes_issued == 0

    def test_blackbox_sse_falls_back_per_token(self):
        sse = Pi2Lev(PrfKeyDeriver(KEY), shuffle_rng=random.Random(5))
        multimap = {b"a": [b"x%d" % i for i in range(4)], b"b": [b"y"]}
        index = sse.build_index(multimap)
        tokens = [sse.trapdoor(b"a"), sse.trapdoor(b"b")]
        result = QueryExecutor(workers=2, cache=False).sse_search(
            index, tokens, sse=sse
        )
        assert result.groups == [sse.search(index, t) for t in tokens]


class TestDprfExecution:
    def _scheme_and_token(self, backend=None):
        kwargs = {"rng": random.Random(9), "intersection_policy": "allow"}
        if backend is not None:
            kwargs["backend"] = backend
        scheme = make_scheme("constant-brc", 256, **kwargs)
        scheme.build_index([(i, (i * 7) % 256) for i in range(120)])
        return scheme, scheme.trapdoor(40, 95)

    def test_matches_legacy_expand_then_search(self, tmp_path):
        for backend in (None, SqliteBackend(tmp_path / "dprf.sqlite")):
            scheme, token = self._scheme_and_token(backend)
            index = scheme._index
            legacy = []
            for dtoken in token:
                for leaf in GgmDprf.expand_token(dtoken):
                    legacy.append(
                        pibas_search(index, token_from_secret(leaf))
                    )
            engine = QueryExecutor(workers=1, cache=False)
            result = engine.dprf_search(index, list(token))
            assert result.payloads == [p for group in legacy for p in group]
            assert result.stats.tokens_expanded == len(list(token))
            assert result.stats.leaves_derived == sum(
                t.leaf_count for t in token
            )

    def test_cache_hits_on_repeat_and_invalidates(self):
        scheme, token = self._scheme_and_token()
        index = scheme._index
        cache = ExpansionCache()
        engine = QueryExecutor(workers=1, cache=cache)
        cold = engine.dprf_search(index, list(token))
        assert cold.stats.cache_hits == 0
        assert cold.stats.cache_misses == len(list(token))
        warm = engine.dprf_search(index, list(token))
        assert warm.stats.cache_hits == len(list(token))
        assert warm.stats.tokens_expanded == 0
        assert warm.payloads == cold.payloads
        engine.invalidate_cache()
        assert len(cache) == 0
        refilled = engine.dprf_search(index, list(token))
        assert refilled.stats.cache_hits == 0
        assert refilled.payloads == cold.payloads


class TestExpansionCache:
    def test_lru_eviction_bounded_by_leaves(self):
        cache = ExpansionCache(max_leaves=4)
        t1 = DelegationToken(bytes([1]) * 32, 1)  # weight 2
        t2 = DelegationToken(bytes([2]) * 32, 1)  # weight 2
        t3 = DelegationToken(bytes([3]) * 32, 1)  # weight 2
        cache.put(t1, ((b"a", b"b"), (b"c", b"d")))
        cache.put(t2, ((b"e", b"f"), (b"g", b"h")))
        assert cache.cached_leaves == 4
        cache.put(t3, ((b"i", b"j"), (b"k", b"l")))  # evicts t1 (LRU)
        assert cache.get(t1) is None
        assert cache.get(t3) is not None
        assert cache.cached_leaves <= 4
        assert cache.evictions == 1

    def test_oversized_entry_skipped(self):
        cache = ExpansionCache(max_leaves=2)
        token = DelegationToken(bytes(32), 2)
        cache.put(token, tuple((b"l%d" % i, b"v") for i in range(4)))
        assert cache.get(token) is None  # a miss, not a wipeout
        assert len(cache) == 0

    def test_stats_snapshot(self):
        cache = ExpansionCache()
        token = DelegationToken(bytes(32), 0)
        cache.get(token)
        cache.put(token, ((b"x", b"y"),))
        cache.get(token)
        snap = cache.stats()
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["entries"] == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ExpansionCache(max_leaves=0)


class TestConfiguration:
    def test_env_workers_respected(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "1")
        assert QueryExecutor().workers == 1
        monkeypatch.setenv(ENV_WORKERS, "3")
        assert QueryExecutor().workers == 3

    def test_cache_flag_semantics(self):
        assert QueryExecutor(cache=False).cache is None
        assert QueryExecutor(cache=None).cache is not None
        # An *empty* cache instance must not read as disabled.
        empty = ExpansionCache()
        assert QueryExecutor(cache=empty).cache is empty

    def test_configure_default_executor_swaps_singleton(self):
        original = default_executor()
        try:
            replaced = configure_default_executor(workers=1, cache=False)
            assert default_executor() is replaced
            assert replaced.workers == 1 and replaced.cache is None
        finally:
            configure_default_executor()
        assert default_executor() is not original

    def test_scheme_adopts_explicit_executor(self):
        engine = QueryExecutor(workers=1, cache=False)
        scheme = make_scheme("logarithmic-brc", 64, rng=random.Random(1), executor=engine)
        assert scheme.executor is engine
        assert scheme.server.executor is engine

    def test_close_is_idempotent_and_reusable(self):
        engine = QueryExecutor(workers=2, cache=False)
        engine.map(lambda x: x, [1, 2, 3])
        engine.close()
        engine.close()
        assert engine.map(lambda x: x * 2, [1, 2]) == [2, 4]
        engine.close()


def test_exec_workers_env_serial_lane_end_to_end(monkeypatch):
    """REPRO_EXEC_WORKERS=1 must yield identical query answers."""
    monkeypatch.setenv(ENV_WORKERS, "1")
    serial_engine = QueryExecutor()
    assert serial_engine.workers == 1
    scheme = make_scheme(
        "constant-brc",
        128,
        rng=random.Random(2),
        intersection_policy="allow",
        executor=serial_engine,
    )
    records = [(i, (i * 3) % 128) for i in range(80)]
    scheme.build_index(records)
    outcome = scheme.query(10, 90)
    expected = {rid for rid, v in records if 10 <= v <= 90}
    assert outcome.ids == frozenset(expected)
    assert outcome.probes_issued > 0
    assert os.environ[ENV_WORKERS] == "1"
