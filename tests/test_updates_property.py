"""Property test: the update manager vs a plaintext dict oracle.

Random interleavings of insert/delete — including the in-batch
insert-then-delete-then-re-insert shapes where a tombstone must consume
exactly the *older* matching insert and nothing newer — are replayed
both into a :class:`~repro.updates.manager.BatchUpdateManager` and into
a plain dict.  After every batch the full-domain query must equal the
oracle exactly; newest-wins resolution, consolidation order and
synthetic-id bookkeeping have no other acceptable answer.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.registry import make_scheme
from repro.updates.batch import delete, insert
from repro.updates.manager import BatchUpdateManager

DOMAIN = 64
IDS = list(range(8))  # few ids: collisions and re-inserts are the point


@st.composite
def op_batches(draw):
    """Short batch lists that honor the update API's contract.

    Deletes name the exact live ``(id, value)`` tuple ("value as
    originally inserted") and modifications travel as delete+insert —
    the shapes outside that contract have deliberately range-dependent
    answers (a tombstone is only visible to queries covering its
    value), so only contract-valid streams admit a dict oracle.  Ids
    are reused aggressively, so in-batch insert→delete→re-insert
    interleavings appear constantly.
    """
    batches = []
    live: "dict[int, int]" = {}
    n_batches = draw(st.integers(1, 6))
    for _ in range(n_batches):
        batch = []
        for _ in range(draw(st.integers(1, 5))):
            rid = draw(st.sampled_from(IDS))
            if rid in live and draw(st.booleans()):
                value = live.pop(rid)
                batch.append(("delete", rid, value))
            else:
                if rid in live:  # modify = delete old + insert new
                    batch.append(("delete", rid, live[rid]))
                value = draw(st.integers(0, DOMAIN - 1))
                live[rid] = value
                batch.append(("insert", rid, value))
        batches.append(batch)
    return batches


def _oracle_apply(oracle: dict, batch) -> None:
    for op, rid, value in batch:
        if op == "insert":
            oracle[rid] = value
        elif oracle.get(rid) == value:
            del oracle[rid]


@given(op_batches(), st.sampled_from([2, 3]))
@settings(max_examples=40, deadline=None)
def test_manager_matches_oracle(batches, step):
    manager = BatchUpdateManager(
        lambda: make_scheme("logarithmic-brc", DOMAIN),
        consolidation_step=step,
        rng=random.Random(99),
    )
    oracle: "dict[int, int]" = {}
    for batch in batches:
        ops = [
            insert(rid, value) if op == "insert" else delete(rid, value)
            for op, rid, value in batch
        ]
        manager.apply_batch(ops)
        _oracle_apply(oracle, batch)
        assert manager.query(0, DOMAIN - 1).ids == frozenset(oracle), (
            batches,
            step,
        )
    # Value-targeted queries agree too, not just the full domain.
    for lo, hi in ((0, DOMAIN // 2), (DOMAIN // 2 + 1, DOMAIN - 1)):
        expected = frozenset(
            rid for rid, value in oracle.items() if lo <= value <= hi
        )
        assert manager.query(lo, hi).ids == expected


def test_in_batch_insert_then_delete_allows_later_reinsert():
    """The ISSUE's named scenario: ins(x) then del(x) inside one batch
    must not leave a tombstone that masks a *later* re-insert of x."""
    manager = BatchUpdateManager(
        lambda: make_scheme("logarithmic-brc", DOMAIN),
        consolidation_step=2,
        rng=random.Random(5),
    )
    manager.apply_batch([insert(1, 10), delete(1, 10)])
    assert manager.query(0, DOMAIN - 1).ids == frozenset()
    manager.apply_batch([insert(1, 10)])
    assert manager.query(0, DOMAIN - 1).ids == frozenset({1})
    # Force every batch through consolidation and re-check.
    manager.apply_batch([insert(2, 20)])
    manager.apply_batch([insert(3, 30)])
    assert manager.query(0, DOMAIN - 1).ids == frozenset({1, 2, 3})


def test_reinsert_same_value_after_consolidated_tombstone():
    """Tombstones consumed during a merge stay consumed: a re-insert of
    the identical (id, value) after the merge is a live record."""
    manager = BatchUpdateManager(
        lambda: make_scheme("logarithmic-brc", DOMAIN),
        consolidation_step=2,
        rng=random.Random(6),
    )
    manager.apply_batch([insert(1, 10)])
    manager.apply_batch([delete(1, 10)])  # step 2: merges immediately
    assert manager.stats.consolidations >= 1
    assert manager.query(0, DOMAIN - 1).ids == frozenset()
    manager.apply_batch([insert(1, 10)])
    assert manager.query(0, DOMAIN - 1).ids == frozenset({1})
