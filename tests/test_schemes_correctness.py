"""Cross-scheme correctness: every RSSE construction against the oracle.

The contract: for any dataset and any query, the refined result equals
the plaintext oracle exactly; the raw server answer is a superset only
for the schemes whose Table 1 row admits false positives.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.pb import PbScheme
from repro.baselines.plaintext import PlaintextRangeIndex
from repro.core.registry import EXPERIMENT_SCHEMES, make_scheme
from repro.errors import DomainError, IndexStateError
from repro.sse.pipack import PiPack

DOMAIN = 512

ALL_SCHEMES = EXPERIMENT_SCHEMES + ("pb",)


def build(name, records, domain=DOMAIN, seed=1, **kwargs):
    if name == "pb":
        scheme = PbScheme(domain, rng=random.Random(seed), **kwargs)
    else:
        extra = {"intersection_policy": "allow"} if name.startswith("constant") else {}
        extra.update(kwargs)
        scheme = make_scheme(name, domain, rng=random.Random(seed), **extra)
    scheme.build_index(records)
    return scheme


QUERIES = [(0, 511), (100, 100), (0, 0), (511, 511), (37, 411), (200, 210)]


@pytest.mark.parametrize("name", ALL_SCHEMES)
class TestAgainstOracle:
    def test_exact_results(self, name, small_records, small_oracle):
        scheme = build(name, small_records)
        for lo, hi in QUERIES:
            outcome = scheme.query(lo, hi)
            assert sorted(outcome.ids) == sorted(small_oracle.query(lo, hi)), (
                name,
                lo,
                hi,
            )

    def test_raw_answer_is_superset(self, name, small_records):
        scheme = build(name, small_records)
        for lo, hi in QUERIES:
            outcome = scheme.query(lo, hi)
            assert outcome.ids <= set(outcome.raw_ids) | outcome.ids
            assert outcome.false_positives == len(set(outcome.raw_ids)) - len(
                outcome.ids
            ) + (len(outcome.raw_ids) - len(set(outcome.raw_ids)))

    def test_no_false_positives_when_promised(self, name, small_records):
        scheme = build(name, small_records)
        if scheme.may_false_positive:
            pytest.skip("scheme admits false positives by design")
        for lo, hi in QUERIES:
            assert scheme.query(lo, hi).false_positives == 0

    def test_empty_result_range(self, name):
        records = [(0, 10), (1, 500)]
        scheme = build(name, records)
        outcome = scheme.query(100, 300)
        assert outcome.ids == frozenset()

    def test_empty_dataset(self, name):
        scheme = build(name, [])
        assert scheme.query(0, DOMAIN - 1).ids == frozenset()

    def test_single_record(self, name):
        scheme = build(name, [(42, 77)])
        assert scheme.query(77, 77).ids == {42}
        assert scheme.query(0, 76).ids == frozenset()
        assert scheme.query(78, DOMAIN - 1).ids == frozenset()

    def test_all_records_same_value(self, name):
        records = [(i, 33) for i in range(40)]
        scheme = build(name, records)
        assert scheme.query(33, 33).ids == set(range(40))
        assert scheme.query(0, 32).ids == frozenset()

    def test_duplicate_ids_rejected(self, name):
        with pytest.raises(DomainError):
            build(name, [(1, 5), (1, 9)])

    def test_out_of_domain_value_rejected(self, name):
        with pytest.raises(DomainError):
            build(name, [(1, DOMAIN)])

    def test_out_of_domain_query_rejected(self, name, small_records):
        scheme = build(name, small_records)
        with pytest.raises(DomainError):
            scheme.query(0, DOMAIN)
        with pytest.raises(DomainError):
            scheme.query(-1, 5)
        with pytest.raises(DomainError):
            scheme.query(10, 5)

    def test_query_before_build_rejected(self, name):
        if name == "pb":
            scheme = PbScheme(DOMAIN, rng=random.Random(1))
        else:
            extra = (
                {"intersection_policy": "allow"} if name.startswith("constant") else {}
            )
            scheme = make_scheme(name, DOMAIN, rng=random.Random(1), **extra)
        with pytest.raises(IndexStateError):
            scheme.query(0, 5)


@pytest.mark.parametrize("name", EXPERIMENT_SCHEMES)
def test_pipack_backend_equivalent(name, small_records, small_oracle):
    """The SSE black box is swappable: PiPack yields identical answers."""
    scheme = build(name, small_records, sse_factory=PiPack)
    for lo, hi in [(37, 411), (0, 511), (250, 250)]:
        assert sorted(scheme.query(lo, hi).ids) == sorted(small_oracle.query(lo, hi))


class TestSkewedData:
    """The SRC worst case the paper motivates SRC-i with."""

    def test_src_floods_on_skew(self, skewed_records):
        scheme = build("logarithmic-src", skewed_records)
        oracle = PlaintextRangeIndex(skewed_records)
        # A small query adjacent to the heavy value 100.
        outcome = scheme.query(101, 110)
        assert sorted(outcome.ids) == sorted(oracle.query(101, 110))
        assert outcome.false_positives > 0

    def test_src_i_bounds_false_positives(self, skewed_records):
        src = build("logarithmic-src", skewed_records)
        srci = build("logarithmic-src-i", skewed_records)
        # Queries near the heavy value: SRC-i must not return the flood.
        total_src = total_srci = 0
        for lo, hi in [(101, 110), (90, 99), (101, 150), (95, 99)]:
            total_src += src.query(lo, hi).false_positives
            total_srci += srci.query(lo, hi).false_positives
        assert total_srci < total_src

    def test_src_i_fp_bound_O_R_plus_r(self, skewed_records):
        """SRC-i false positives stay within the analytic 4(R + r) slack."""
        scheme = build("logarithmic-src-i", skewed_records)
        for lo, hi in [(101, 110), (0, 50), (480, 511), (99, 101)]:
            outcome = scheme.query(lo, hi)
            R = hi - lo + 1
            r = len(outcome.ids)
            assert outcome.false_positives <= 4 * (R + r) + 4, (lo, hi)


@st.composite
def dataset_and_query(draw):
    n = draw(st.integers(0, 60))
    records = [(i, draw(st.integers(0, 127))) for i in range(n)]
    lo = draw(st.integers(0, 127))
    hi = draw(st.integers(lo, 127))
    return records, lo, hi


@pytest.mark.parametrize("name", ALL_SCHEMES)
@given(data=dataset_and_query())
@settings(max_examples=25, deadline=None)
def test_property_random_datasets(name, data):
    records, lo, hi = data
    scheme = build(name, records, domain=128, seed=3)
    oracle = PlaintextRangeIndex(records)
    assert sorted(scheme.query(lo, hi).ids) == sorted(oracle.query(lo, hi))
