"""Consolidation racing concurrent searches must never serve stale state.

The regression this guards: ``_consolidate_level`` used to retire the
merged group's indexes (and clear their storage / invalidate their GGM
expansion caches) while a concurrent ``query`` could still be fanning
out over the old index list — a reader could hit a half-cleared op log
or a stale cached expansion and drop (or resurrect) records.  The
manager now publishes the swap atomically behind a readers-writer gate,
invalidating exec caches *before* the merged index becomes visible, so
every query observes either the complete old forest or the complete new
one — never a mix.
"""

from __future__ import annotations

import random
import threading

from repro.core.registry import make_scheme
from repro.rangestore import RangeStore
from repro.storage import InMemoryBackend
from repro.updates.batch import delete, insert
from repro.updates.manager import BatchUpdateManager

DOMAIN = 1 << 10


def _run_churn(query_fn, apply_fn, *, readers: int, duration_batches: int):
    """Stable records must appear in every result while noise churns."""
    stable = {rid: (rid * 13) % DOMAIN for rid in range(100, 120)}
    apply_fn([insert(rid, value) for rid, value in stable.items()])
    expected = frozenset(stable)

    failures: "list[str]" = []
    stop = threading.Event()

    def reader() -> None:
        while not stop.is_set():
            outcome = query_fn(0, DOMAIN - 1)
            ids = outcome.ids if hasattr(outcome, "ids") else outcome
            if not expected <= ids:
                failures.append(f"dropped {sorted(expected - ids)}")
                return

    threads = [threading.Thread(target=reader) for _ in range(readers)]
    for thread in threads:
        thread.start()
    try:
        # Noise batches sized 1 at step 2: every few batches trigger a
        # cascade of consolidations racing the readers.
        noise_id = 10_000
        for _ in range(duration_batches):
            apply_fn([insert(noise_id, noise_id % DOMAIN)])
            apply_fn([delete(noise_id, noise_id % DOMAIN)])
            noise_id += 1
            if failures:
                break
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    assert not failures, failures[0]


def test_consolidation_never_starves_concurrent_searches():
    backend = InMemoryBackend()
    assert backend.thread_safe_reads
    manager = BatchUpdateManager(
        lambda: make_scheme("logarithmic-brc", DOMAIN),
        consolidation_step=2,
        rng=random.Random(7),
        backend=backend,
    )
    _run_churn(
        manager.query, manager.apply_batch, readers=4, duration_batches=30
    )
    # The churn really exercised the race window.
    assert manager.stats.consolidations >= 10


def test_rangestore_consolidation_race_through_facade():
    """Same interleaving through the RangeStore flush/search surface."""
    store = RangeStore.open(
        "logarithmic-brc",
        domain_size=DOMAIN,
        backend=InMemoryBackend(),
        consolidation_step=2,
        rng=random.Random(11),
    )

    lock = threading.Lock()

    def apply_fn(ops):
        # RangeStore.flush is an owner-side call; serialize writers the
        # way a real single owner would.
        with lock:
            store.apply_ops(ops)
            store.flush()

    _run_churn(store.search, apply_fn, readers=3, duration_batches=20)
    assert store.consolidations >= 5


def test_exec_caches_invalidated_when_indexes_retire():
    """Every retired index invalidates its engine's expansion cache —
    inside the write gate, so no reader can pair a stale cached GGM
    expansion with the post-merge forest."""
    from repro.exec.engine import QueryExecutor

    executor = QueryExecutor()
    manager = BatchUpdateManager(
        lambda: make_scheme("logarithmic-src", DOMAIN, executor=executor),
        consolidation_step=2,
        rng=random.Random(3),
    )
    retired = []
    original = BatchUpdateManager._discard_index

    def spying_discard(self, idx):
        retired.append(idx)
        return original(self, idx)

    BatchUpdateManager._discard_index = spying_discard
    try:
        for i in range(4):  # two level-0 merges at step 2
            manager.apply_batch([insert(i, i * 5)])
            manager.query(0, DOMAIN - 1)  # populate the expansion cache
    finally:
        BatchUpdateManager._discard_index = original
    assert retired, "step 2 with 4 batches must have consolidated"
    stats = executor.cache.stats()
    assert stats["invalidations"] >= len(retired)
    assert manager.query(0, DOMAIN - 1).ids == frozenset(range(4))
