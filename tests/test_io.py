"""Tests for the keystore and snapshot persistence layer."""

from __future__ import annotations

import random

import pytest

from repro.baselines.plaintext import PlaintextRangeIndex
from repro.core.registry import EXPERIMENT_SCHEMES, make_scheme
from repro.errors import IndexStateError, IntegrityError, QueryIntersectionError
from repro.io import dump_scheme, load_scheme, restore_scheme, save_scheme, unwrap, wrap


class TestKeystore:
    def test_round_trip(self):
        blob = wrap(b"secret-keys", "hunter2", iterations=1000)
        assert unwrap(blob, "hunter2") == b"secret-keys"

    def test_wrong_passphrase(self):
        blob = wrap(b"secret-keys", "hunter2", iterations=1000)
        with pytest.raises(IntegrityError):
            unwrap(blob, "hunter3")

    def test_tampered_blob(self):
        blob = bytearray(wrap(b"secret-keys", "hunter2", iterations=1000))
        blob[-1] ^= 0x01
        with pytest.raises(IntegrityError):
            unwrap(bytes(blob), "hunter2")

    def test_not_a_keystore(self):
        with pytest.raises(IntegrityError):
            unwrap(b"garbage", "x")

    def test_randomized_wrapping(self):
        a = wrap(b"same", "pw", iterations=1000)
        b = wrap(b"same", "pw", iterations=1000)
        assert a != b  # fresh salt + nonce every time

    def test_unicode_passphrase(self):
        blob = wrap(b"s", "päßwörd ✓", iterations=1000)
        assert unwrap(blob, "päßwörd ✓") == b"s"


def build(name, records, domain=512, seed=1):
    extra = {"intersection_policy": "allow"} if name.startswith("constant") else {}
    scheme = make_scheme(name, domain, rng=random.Random(seed), **extra)
    scheme.build_index(records)
    return scheme


@pytest.mark.parametrize("name", EXPERIMENT_SCHEMES)
class TestSnapshotRoundTrip:
    def test_restored_scheme_answers_identically(self, name, small_records, small_oracle):
        scheme = build(name, small_records)
        restored = restore_scheme(dump_scheme(scheme))
        if name.startswith("constant"):
            restored.guard.policy = "allow"
        for lo, hi in [(0, 511), (37, 411), (250, 250)]:
            assert sorted(restored.query(lo, hi).ids) == sorted(
                small_oracle.query(lo, hi)
            )

    def test_file_round_trip_with_passphrase(
        self, name, small_records, small_oracle, tmp_path
    ):
        scheme = build(name, small_records)
        path = tmp_path / "index.rsse"
        save_scheme(scheme, path, passphrase="s3cret")
        restored = load_scheme(path, passphrase="s3cret")
        if name.startswith("constant"):
            restored.guard.policy = "allow"
        assert sorted(restored.query(10, 60).ids) == sorted(
            small_oracle.query(10, 60)
        )

    def test_wrong_passphrase_rejected(self, name, small_records, tmp_path):
        scheme = build(name, small_records)
        path = tmp_path / "index.rsse"
        save_scheme(scheme, path, passphrase="right")
        with pytest.raises(IntegrityError):
            load_scheme(path, passphrase="wrong")


class TestSnapshotEdgeCases:
    def test_unbuilt_scheme_rejected(self):
        scheme = make_scheme("logarithmic-brc", 64)
        with pytest.raises(IndexStateError):
            dump_scheme(scheme)

    def test_truncated_snapshot(self, small_records):
        blob = dump_scheme(build("logarithmic-brc", small_records))
        with pytest.raises(IntegrityError):
            restore_scheme(blob[: len(blob) // 2])

    def test_trailing_garbage_rejected(self, small_records):
        blob = dump_scheme(build("logarithmic-brc", small_records))
        with pytest.raises(IntegrityError):
            restore_scheme(blob + b"extra")

    def test_not_a_snapshot(self):
        with pytest.raises(IntegrityError):
            restore_scheme(b"whatever this is")

    def test_guard_history_survives(self, small_records):
        """The Constant schemes' non-intersection constraint must hold
        across save/load — old queries stay forbidden territory."""
        scheme = make_scheme("constant-brc", 512, rng=random.Random(1))
        scheme.build_index(small_records)
        scheme.query(10, 20)
        restored = restore_scheme(dump_scheme(scheme))
        with pytest.raises(QueryIntersectionError):
            restored.query(15, 30)
        restored.query(30, 40)  # disjoint: still fine

    def test_empty_dataset_snapshot(self):
        scheme = build("logarithmic-src", [])
        restored = restore_scheme(dump_scheme(scheme))
        assert restored.query(0, 511).ids == frozenset()

    def test_src_i_distinct_values_survive(self, small_records):
        scheme = build("logarithmic-src-i", small_records)
        restored = restore_scheme(dump_scheme(scheme))
        assert restored.distinct_values == scheme.distinct_values
