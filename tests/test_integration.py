"""End-to-end integration tests across modules.

These exercise the paths a real deployment would: realistic workloads,
black-box SSE swapping, index serialization across a simulated network
boundary, schemes driven through the update manager, and the costs
reported by QueryOutcome.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.plaintext import PlaintextRangeIndex
from repro.core.registry import EXPERIMENT_SCHEMES, make_scheme
from repro.sse.base import EncryptedIndex
from repro.sse.pipack import PiPack
from repro.updates import BatchUpdateManager, delete, insert
from repro.workloads.datasets import usps_like, with_distinct_fraction
from repro.workloads.queries import percent_of_domain_ranges, random_ranges

DOMAIN = 1 << 14


def scheme_for(name, seed=11, domain=DOMAIN, **kwargs):
    extra = {"intersection_policy": "allow"} if name.startswith("constant") else {}
    extra.update(kwargs)
    return make_scheme(name, domain, rng=random.Random(seed), **extra)


@pytest.mark.parametrize("name", EXPERIMENT_SCHEMES)
def test_realistic_uniform_workload(name):
    records = with_distinct_fraction(800, DOMAIN, 0.95, seed=21)
    oracle = PlaintextRangeIndex(records)
    scheme = scheme_for(name)
    scheme.build_index(records)
    for lo, hi in random_ranges(DOMAIN, 15, seed=22):
        assert sorted(scheme.query(lo, hi).ids) == sorted(oracle.query(lo, hi))


@pytest.mark.parametrize("name", ("logarithmic-src", "logarithmic-src-i"))
def test_realistic_skewed_workload(name):
    records = usps_like(800, seed=23)
    domain = 276_841
    oracle = PlaintextRangeIndex(records)
    scheme = scheme_for(name, domain=domain)
    scheme.build_index(records)
    for lo, hi in percent_of_domain_ranges(domain, 5, 10, seed=24):
        outcome = scheme.query(lo, hi)
        assert sorted(outcome.ids) == sorted(oracle.query(lo, hi))
        assert outcome.false_positive_rate <= 1.0


class TestServerBoundary:
    """The EDB must survive serialization — i.e. actually be shippable."""

    def test_logarithmic_index_round_trips(self, small_records, small_oracle):
        scheme = scheme_for("logarithmic-brc", domain=512)
        scheme.build_index(small_records)
        # Simulate upload/download of the EDB.
        wire = scheme._index.to_bytes()
        scheme._index = EncryptedIndex.from_bytes(wire)
        assert sorted(scheme.query(10, 200).ids) == sorted(
            small_oracle.query(10, 200)
        )

    def test_src_i_double_index_round_trips(self, small_records, small_oracle):
        scheme = scheme_for("logarithmic-src-i", domain=512)
        scheme.build_index(small_records)
        scheme._index1 = EncryptedIndex.from_bytes(scheme._index1.to_bytes())
        scheme._index2 = EncryptedIndex.from_bytes(scheme._index2.to_bytes())
        assert sorted(scheme.query(10, 200).ids) == sorted(
            small_oracle.query(10, 200)
        )


class TestQueryOutcomeAccounting:
    def test_token_bytes_positive_and_consistent(self, small_records):
        for name in EXPERIMENT_SCHEMES:
            scheme = scheme_for(name, domain=512)
            scheme.build_index(small_records)
            outcome = scheme.query(100, 300)
            assert outcome.token_bytes > 0, name
            assert outcome.trapdoor_seconds >= 0 and outcome.server_seconds >= 0

    def test_src_constant_token_size_independent_of_range(self, small_records):
        scheme = scheme_for("logarithmic-src", domain=512)
        scheme.build_index(small_records)
        sizes = {scheme.query(lo, hi).token_bytes for lo, hi in [(0, 3), (0, 400), (77, 300)]}
        assert len(sizes) == 1

    def test_result_size_property(self, small_records, small_oracle):
        scheme = scheme_for("logarithmic-brc", domain=512)
        scheme.build_index(small_records)
        outcome = scheme.query(0, 511)
        assert outcome.result_size == len(small_oracle.query(0, 511))
        assert outcome.false_positive_rate == 0.0


class TestUpdateManagerWithEveryScheme:
    @pytest.mark.parametrize("name", EXPERIMENT_SCHEMES)
    def test_insert_delete_cycle(self, name):
        seeder = random.Random(31)
        mgr = BatchUpdateManager(
            lambda: scheme_for(name, seed=seeder.randrange(2**62), domain=1 << 10),
            consolidation_step=2,
            rng=random.Random(32),
        )
        mgr.apply_batch([insert(i, (37 * i) % 1024) for i in range(30)])
        mgr.apply_batch([delete(5, (37 * 5) % 1024), insert(100, 512)])
        expected = {i for i in range(30) if i != 5 and 100 <= (37 * i) % 1024 <= 600}
        expected |= {100}
        assert mgr.query(100, 600).ids == expected


class TestBlackBoxSseSwap:
    def test_pipack_block_sizes(self, small_records, small_oracle):
        for block_size in (1, 4, 32):
            factory = lambda deriver: PiPack(deriver, block_size=block_size)  # noqa: E731
            scheme = scheme_for("logarithmic-src", domain=512, sse_factory=factory)
            scheme.build_index(small_records)
            assert sorted(scheme.query(20, 450).ids) == sorted(
                small_oracle.query(20, 450)
            )

    def test_packing_shrinks_long_posting_lists(self):
        """Packing wins when posting lists are long (few distinct values);
        on sparse lists the block padding can dominate — that is the
        space/padding trade-off the paper's S/K parameters tune."""
        heavy = [(i, (i % 4) * 100) for i in range(300)]  # 4 distinct values
        for name in ("logarithmic-brc", "logarithmic-src"):
            flat = scheme_for(name, domain=512)
            packed = scheme_for(
                name,
                domain=512,
                sse_factory=lambda d: PiPack(d, block_size=16),
            )
            flat.build_index(heavy)
            packed.build_index(heavy)
            assert packed.index_size_bytes() < flat.index_size_bytes(), name


class TestScaleSmoke:
    @pytest.mark.slow
    def test_ten_thousand_records(self):
        records = with_distinct_fraction(10_000, 1 << 20, 0.95, seed=41)
        oracle = PlaintextRangeIndex(records)
        scheme = scheme_for("logarithmic-src-i", domain=1 << 20)
        scheme.build_index(records)
        for lo, hi in random_ranges(1 << 20, 5, seed=42):
            assert sorted(scheme.query(lo, hi).ids) == sorted(oracle.query(lo, hi))
