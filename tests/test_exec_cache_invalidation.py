"""Cache invalidation correctness: cached ≡ uncached, always.

The expansion cache must never change an answer — not after updates,
not after LSM consolidations, not after a snapshot restore.  A
hypothesis property drives two RangeStores through the same randomized
insert/delete/flush/search history, one with the exec engine's cache
enabled and one with it disabled, across every registry scheme, and a
restore-path test proves the invalidation hooks fire where the ISSUE
wires them (consolidate/discard and restore).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.registry import SCHEMES
from repro.exec import ExpansionCache, QueryExecutor
from repro.rangestore import RangeStore
from repro.updates.batch import delete as delete_op
from repro.updates.batch import insert as insert_op
from repro.updates.manager import BatchUpdateManager

DOMAIN = 64  # small enough for Quadratic's O(m²) keywords

#: An update history: batches of (record_id, value, is_delete) triples.
#: Ids are drawn per-batch-unique; deletes target previously used ids.
_history = st.lists(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=39),
            st.integers(min_value=0, max_value=DOMAIN - 1),
            st.booleans(),
        ),
        min_size=1,
        max_size=6,
        unique_by=lambda op: op[0],
    ),
    min_size=1,
    max_size=4,
)

_query = st.tuples(
    st.integers(min_value=0, max_value=DOMAIN - 1),
    st.integers(min_value=0, max_value=DOMAIN - 1),
)


def _store(name: str, cached: bool, seed: int) -> RangeStore:
    executor = QueryExecutor(
        workers=1, cache=ExpansionCache() if cached else False
    )
    kwargs = {}
    if name.startswith("constant"):
        kwargs["intersection_policy"] = "allow"
    return RangeStore.open(
        name,
        domain_size=DOMAIN,
        consolidation_step=2,  # small step: merges (and hooks) fire often
        rng=random.Random(seed),
        executor=executor,
        **kwargs,
    )


def _inserted(history) -> "set[int]":
    live: set[int] = set()
    for batch in history:
        for rid, _value, is_delete in batch:
            if is_delete:
                live.discard(rid)
            else:
                live.add(rid)
    return live


def _drive(store: RangeStore, history, queries) -> list:
    """Apply the history, interleaving searches; return all answers."""
    answers = []
    seen_values: dict[int, int] = {}
    for batch in history:
        for rid, value, is_delete in batch:
            if is_delete:
                # Deleting something never inserted is a no-op op-wise;
                # use the last known value (or the given one) so both
                # stores issue byte-identical op streams.
                store.delete(rid, seen_values.get(rid, value))
            else:
                store.insert(rid, value)
                seen_values[rid] = value
        store.flush()
        for lo, hi in queries:
            lo, hi = min(lo, hi), max(lo, hi)
            answers.append(store.search(lo, hi).ids)
    return answers


@pytest.mark.parametrize("name", sorted(SCHEMES))
@given(history=_history, queries=st.lists(_query, min_size=1, max_size=2))
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_search_identical_with_and_without_cache(name, history, queries):
    cached = _store(name, cached=True, seed=77)
    uncached = _store(name, cached=False, seed=77)
    assert _drive(cached, history, queries) == _drive(
        uncached, history, queries
    )


def test_consolidation_fires_invalidation_hook():
    """Every consolidation discards retired indexes AND invalidates
    their engine cache (observable through the shared cache counter)."""
    cache = ExpansionCache()
    executor = QueryExecutor(workers=1, cache=cache)

    def factory():
        from repro.core.registry import make_scheme

        return make_scheme(
            "constant-brc",
            DOMAIN,
            rng=random.Random(5),
            intersection_policy="allow",
            executor=executor,
        )

    manager = BatchUpdateManager(factory, consolidation_step=2)
    manager.apply_batch([insert_op(1, 10)])
    manager.query(0, 20)
    assert len(cache) > 0  # the query populated the cache
    manager.apply_batch([insert_op(2, 11)])  # step=2 -> consolidation
    assert manager.stats.consolidations >= 1
    assert cache.invalidations >= 1
    # And the merged index still answers correctly, cache repopulating.
    assert manager.query(0, 20).ids == frozenset({1, 2})


def test_restore_invalidates_and_answers_identically(tmp_path):
    cache = ExpansionCache()
    executor = QueryExecutor(workers=1, cache=cache)
    store = RangeStore.open(
        "constant-brc",
        domain_size=DOMAIN,
        rng=random.Random(3),
        intersection_policy="allow",
        executor=executor,
    )
    for rid in range(12):
        store.insert(rid, (rid * 5) % DOMAIN)
    store.delete(3, 15)
    before = store.search(0, DOMAIN - 1).ids
    assert len(cache) > 0
    path = tmp_path / "store.rsse"
    store.save(path)
    invalidations_before = cache.invalidations
    # NB: restored per-batch schemes go through RangeStore's factory,
    # which passes the same executor (hence the same cache) through.
    restored = RangeStore.load(
        path,
        rng=random.Random(3),
        intersection_policy="allow",
        executor=executor,
    )
    assert cache.invalidations > invalidations_before  # restore hook fired
    assert restored.search(0, DOMAIN - 1).ids == before


def test_update_then_search_consistent_under_shared_cache():
    """Two schemes sharing one engine/cache can't poison each other:
    fresh keys mean fresh GGM seeds, so answers stay exact."""
    cache = ExpansionCache()
    executor = QueryExecutor(workers=1, cache=cache)
    from repro.core.registry import make_scheme

    a = make_scheme(
        "constant-brc", DOMAIN, rng=random.Random(1),
        intersection_policy="allow", executor=executor,
    )
    b = make_scheme(
        "constant-brc", DOMAIN, rng=random.Random(2),
        intersection_policy="allow", executor=executor,
    )
    a.build_index([(i, i % DOMAIN) for i in range(30)])
    b.build_index([(i, (i * 2) % DOMAIN) for i in range(30)])
    for _ in range(2):  # second pass hits the cache
        assert a.query(0, 31).ids == frozenset(
            i for i in range(30) if 0 <= i % DOMAIN <= 31
        )
        assert b.query(0, 31).ids == frozenset(
            i for i in range(30) if 0 <= (i * 2) % DOMAIN <= 31
        )
    assert cache.hits > 0
