"""Remote round-trips for every registry scheme, over both transports.

The acceptance bar of the split-trust redesign: `RemoteRangeClient`
drives all seven schemes — including the two-round Logarithmic-SRC-i
and the DPRF-delegating Constant schemes — through public scheme APIs
only, and remote answers equal local ``scheme.query()`` answers on the
same seeded dataset.
"""

from __future__ import annotations

import random

import pytest

from repro import SCHEMES, make_scheme
from repro.baselines.plaintext import PlaintextRangeIndex
from repro.errors import IndexStateError
from repro.protocol import RemoteRangeClient, RsseServer, UploadIndex, UploadRecords
from repro.protocol import messages as msg
from repro.storage import ShardedBackend, SqliteBackend

#: Every wire-capable scheme of the registry (PB's Bloom tree has no EDB).
REMOTE_SCHEMES = (
    "quadratic",
    "constant-brc",
    "constant-urc",
    "logarithmic-brc",
    "logarithmic-urc",
    "logarithmic-src",
    "logarithmic-src-i",
)

TRANSPORTS = ("in-process", "serialized")


def _domain(name: str) -> int:
    # Quadratic's O(n·m²) build cost wants a small domain here; the
    # dataset values all fit in [0, 64).
    return 64 if name == "quadratic" else 128


def _build(name: str, records, seed: int):
    kwargs = {"intersection_policy": "allow"} if name.startswith("constant") else {}
    return make_scheme(name, _domain(name), rng=random.Random(seed), **kwargs)


def _transport(server: RsseServer, kind: str):
    if kind == "in-process":
        return server.handle

    def serialized(frame: bytes):
        # Simulate a real socket hop: the frame is re-parsed and
        # re-serialized on each side, so any non-canonical encoding or
        # in-memory aliasing would be caught here.
        reencoded = msg.parse_message(bytes(frame)).to_frame()
        assert reencoded == bytes(frame)
        response = server.handle(reencoded)
        if response is None:
            return None
        return msg.parse_message(bytes(response)).to_frame()

    return serialized


@pytest.fixture
def dataset(rng):
    return [(i, rng.randrange(64)) for i in range(150)]


@pytest.mark.parametrize("transport_kind", TRANSPORTS)
@pytest.mark.parametrize("name", REMOTE_SCHEMES)
class TestRemoteEqualsLocal:
    def test_round_trip(self, name, transport_kind, dataset):
        # Local reference: same seeded dataset, plain in-process query().
        local = _build(name, dataset, seed=1)
        local.build_index(dataset)
        remote_scheme = _build(name, dataset, seed=2)
        server = RsseServer()
        client = RemoteRangeClient(
            remote_scheme, _transport(server, transport_kind), rng=random.Random(3)
        )
        client.outsource(dataset)
        # After outsourcing the owner holds nothing but keys.
        assert remote_scheme.server.index_names() == []
        assert dict(remote_scheme.server.tuple_store) == {}
        for lo, hi in [(0, 63), (17, 51), (32, 32), (50, 60)]:
            assert client.query(lo, hi) == local.query(lo, hi).ids

    def test_query_outcome_metrics(self, name, transport_kind, dataset):
        server = RsseServer()
        scheme = _build(name, dataset, seed=4)
        client = RemoteRangeClient(
            scheme, _transport(server, transport_kind), rng=random.Random(5)
        )
        client.outsource(dataset)
        outcome = client.query_outcome(10, 50)
        assert outcome.rounds == (2 if name == "logarithmic-src-i" else 1)
        assert outcome.response_bytes > 0
        assert outcome.token_bytes > 0
        assert outcome.refine_seconds >= 0.0


@pytest.mark.parametrize("name", REMOTE_SCHEMES)
class TestQueryMany:
    def test_batched_matches_sequential(self, name, dataset):
        server = RsseServer()
        scheme = _build(name, dataset, seed=6)
        client = RemoteRangeClient(scheme, server.handle, rng=random.Random(7))
        client.outsource(dataset)
        oracle = PlaintextRangeIndex(dataset)
        ranges = [(0, 63), (5, 20), (30, 31), (45, 63)]
        results = client.query_many(ranges)
        assert [sorted(ids) for ids in results] == [
            sorted(oracle.query(lo, hi)) for lo, hi in ranges
        ]


class TestShardedAndPersistentServers:
    def test_sharded_backend_query(self, small_records, small_oracle):
        server = RsseServer(backend=ShardedBackend(shard_count=3))
        scheme = make_scheme("logarithmic-src-i", 512, rng=random.Random(1))
        client = RemoteRangeClient(scheme, server.handle, rng=random.Random(2))
        client.outsource(small_records)
        for lo, hi in [(0, 511), (40, 260), (250, 250)]:
            assert sorted(client.query(lo, hi)) == sorted(small_oracle.query(lo, hi))

    def test_server_restart_from_sqlite(self, tmp_path, small_records, small_oracle):
        path = tmp_path / "server.sqlite"
        backend = SqliteBackend(path)
        server = RsseServer(backend=backend)
        scheme = make_scheme("logarithmic-brc", 512, rng=random.Random(1))
        client = RemoteRangeClient(scheme, server.handle, rng=random.Random(2))
        client.outsource(small_records)
        backend.close()
        # A new server process over the same file rehydrates the handle.
        revived = RsseServer(backend=SqliteBackend(path))
        assert revived.index_count() == 1
        client._transport = revived.handle
        assert sorted(client.query(10, 60)) == sorted(small_oracle.query(10, 60))


class TestClientHardening:
    def test_retire_is_idempotent_when_never_uploaded(self):
        server = RsseServer()
        client = RemoteRangeClient(
            make_scheme("logarithmic-brc", 64, rng=random.Random(1)), server.handle
        )
        client.retire()  # nothing uploaded: must be a silent no-op
        client.retire()

    def test_retire_twice_after_outsource(self, small_records):
        server = RsseServer()
        client = RemoteRangeClient(
            make_scheme("logarithmic-brc", 512, rng=random.Random(1)),
            server.handle,
            rng=random.Random(2),
        )
        client.outsource(small_records)
        client.retire()
        client.retire()  # second call: no frames, no raise
        assert server.index_count() == 0

    def test_pb_rejected_for_remote_use(self):
        server = RsseServer()
        with pytest.raises(IndexStateError):
            RemoteRangeClient(
                make_scheme("pb", 512, rng=random.Random(1)), server.handle
            )

    def test_fetch_reports_every_missing_id(self):
        server = RsseServer()
        server.handle(UploadIndex(1, b"").to_frame())
        server.handle(UploadRecords(1, [(5, b"present")]).to_frame())
        with pytest.raises(IndexStateError) as excinfo:
            server.handle(msg.FetchRequest(1, [5, 77, 78]).to_frame())
        assert "77" in str(excinfo.value) and "78" in str(excinfo.value)

    def test_payload_round_trip_over_the_wire(self, small_records):
        server = RsseServer()
        scheme = make_scheme("logarithmic-urc", 512, rng=random.Random(1))
        client = RemoteRangeClient(scheme, server.handle, rng=random.Random(2))
        payloads = {0: b"doc-zero", 5: b"doc-five"}
        client.outsource(small_records, payloads=payloads)
        ids = client.query(0, 511)
        assert client.fetch_payloads(sorted(ids)) == payloads

    def test_padded_quadratic_dummies_filtered_before_fetch(self):
        """Padding ids exist only inside the EDB; the client must drop
        them owner-side instead of asking the server to fetch them."""
        server = RsseServer()
        scheme = make_scheme("quadratic", 16, padded=True, rng=random.Random(1))
        client = RemoteRangeClient(scheme, server.handle, rng=random.Random(2))
        client.outsource([(1, 3), (2, 7), (3, 4)])
        assert client.query(2, 5) == frozenset({1, 3})
        assert client.query_many([(2, 5), (6, 8)]) == [
            frozenset({1, 3}),
            frozenset({2}),
        ]

    def test_pb_registered_in_registry(self):
        # The satellite fix: make_scheme("pb") works for CLI comparisons.
        assert "pb" in SCHEMES
        scheme = make_scheme("pb", 128, rng=random.Random(1))
        scheme.build_index([(0, 5), (1, 100)])
        assert scheme.query(0, 50).ids == {0}
