"""Unit tests for the RangeScheme base class and its value types."""

from __future__ import annotations

import random

import pytest

from repro.core.scheme import MultiKeywordToken, QueryOutcome, Record
from repro.core.logarithmic import LogarithmicBrc
from repro.sse.base import KeywordToken


class TestRecord:
    def test_fields(self):
        rec = Record(3, 99)
        assert rec.id == 3 and rec.value == 99

    def test_frozen(self):
        rec = Record(3, 99)
        with pytest.raises(AttributeError):
            rec.id = 4  # type: ignore[misc]

    def test_accepted_by_build_index(self):
        scheme = LogarithmicBrc(128, rng=random.Random(1))
        scheme.build_index([Record(0, 5), (1, 6)])  # mixed forms fine
        assert scheme.query(5, 6).ids == {0, 1}


class TestQueryOutcome:
    def _outcome(self, ids, raw, fps):
        return QueryOutcome(
            ids=frozenset(ids),
            raw_ids=tuple(raw),
            false_positives=fps,
            token_bytes=32,
            rounds=1,
            trapdoor_seconds=0.0,
            server_seconds=0.0,
        )

    def test_result_size(self):
        assert self._outcome({1, 2}, (1, 2, 3), 1).result_size == 2

    def test_fp_rate(self):
        assert self._outcome({1}, (1, 2), 1).false_positive_rate == 0.5

    def test_fp_rate_empty(self):
        assert self._outcome(set(), (), 0).false_positive_rate == 0.0


class TestMultiKeywordToken:
    def test_len_iter_size(self):
        tokens = [KeywordToken(b"a" * 16, b"b" * 16) for _ in range(3)]
        token = MultiKeywordToken(list(tokens))
        assert len(token) == 3
        assert list(token) == tokens
        assert token.serialized_size() == 96

    def test_empty(self):
        token = MultiKeywordToken()
        assert len(token) == 0 and token.serialized_size() == 0


class TestSchemeBookkeeping:
    def test_size_property(self, small_records):
        scheme = LogarithmicBrc(512, rng=random.Random(1))
        scheme.build_index(small_records)
        assert scheme.size == len(small_records)

    def test_resolve_returns_decrypted_records(self, small_records):
        scheme = LogarithmicBrc(512, rng=random.Random(1))
        scheme.build_index(small_records)
        values = dict(small_records)
        got = scheme.resolve([0, 5, 10])
        assert [(r.id, r.value) for r in got] == [
            (0, values[0]),
            (5, values[5]),
            (10, values[10]),
        ]

    def test_token_size_bytes_on_iterables(self):
        tokens = [KeywordToken(b"a" * 16, b"b" * 16)]
        assert LogarithmicBrc.token_size_bytes(MultiKeywordToken(tokens)) == 32
        # Also on bare lists of sized parts.
        assert LogarithmicBrc.token_size_bytes(tokens) == 32

    def test_record_store_is_semantically_encrypted(self, small_records):
        """Two builds of the same data yield different ciphertexts."""
        a = LogarithmicBrc(512, rng=random.Random(1))
        b = LogarithmicBrc(512, rng=random.Random(2))
        a.build_index(small_records)
        b.build_index(small_records)
        assert a._encrypted_store[0] != b._encrypted_store[0]
