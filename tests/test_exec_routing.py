"""Every registry scheme routes search through the exec engine.

The acceptance bar of the query-execution subsystem: a spy executor
injected into each scheme observes the engine being used for every
search, and instrumented SSE objects prove no scheme quietly reverted
to the retired per-token ``sse.search`` loop.  The protocol server is
covered the same way (its searches arrive via wire frames).
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.plaintext import PlaintextRangeIndex
from repro.core.registry import SCHEMES, make_scheme
from repro.exec import QueryExecutor
from repro.protocol.client import RemoteRangeClient
from repro.protocol.server import RsseServer

#: The wire-capable schemes (PB's Bloom tree has no EDB/SSE tokens; it
#: routes through the engine's generic map instead — tested separately).
EDB_SCHEMES = (
    "quadratic",
    "constant-brc",
    "constant-urc",
    "logarithmic-brc",
    "logarithmic-urc",
    "logarithmic-src",
    "logarithmic-src-i",
)


class SpyExecutor(QueryExecutor):
    """Counts engine entry points; serial so assertions stay exact."""

    def __init__(self) -> None:
        super().__init__(workers=1, cache=False)
        self.sse_calls = 0
        self.dprf_calls = 0
        self.map_calls = 0

    def sse_search(self, index, tokens, **kwargs):
        self.sse_calls += 1
        return super().sse_search(index, tokens, **kwargs)

    def dprf_search(self, index, tokens, **kwargs):
        self.dprf_calls += 1
        return super().dprf_search(index, tokens, **kwargs)

    def map(self, fn, items):
        self.map_calls += 1
        return super().map(fn, items)


def _forbid_per_token_loop(scheme):
    """Booby-trap every owner-side SSE object's ``search``: the retired
    loop called it once per token/leaf; the engine must not."""

    def bomb(*_args, **_kwargs):  # pragma: no cover - failure path
        raise AssertionError(
            f"{scheme.name} fell back to the per-token sse.search loop"
        )

    for attr in ("_sse", "_sse1", "_sse2"):
        sse = getattr(scheme, attr, None)
        if sse is not None:
            sse.search = bomb


def _domain(name: str) -> int:
    return 64 if name == "quadratic" else 128


def _build(name: str, spy: SpyExecutor, seed: int = 7):
    kwargs = {"rng": random.Random(seed), "executor": spy}
    if name.startswith("constant"):
        kwargs["intersection_policy"] = "allow"
    scheme = make_scheme(name, _domain(name), **kwargs)
    records = [(i, (i * 5) % _domain(name)) for i in range(90)]
    scheme.build_index(records)
    return scheme, records


@pytest.mark.parametrize("name", EDB_SCHEMES)
def test_scheme_search_routes_through_engine(name):
    spy = SpyExecutor()
    scheme, records = _build(name, spy)
    _forbid_per_token_loop(scheme)
    oracle = PlaintextRangeIndex(records)
    lo, hi = 20, min(75, scheme.domain_size - 1)
    outcome = scheme.query(lo, hi)
    assert outcome.ids == frozenset(oracle.query(lo, hi))
    if name.startswith("constant"):
        assert spy.dprf_calls >= 1
        assert outcome.tokens_expanded > 0
    else:
        assert spy.sse_calls >= 1
    assert outcome.probes_issued > 0


def test_all_registry_schemes_covered():
    """The parametrization above plus PB is the whole registry — a new
    scheme must be added to these tests (and the engine) to land."""
    assert set(EDB_SCHEMES) | {"pb"} == set(SCHEMES)


def test_pb_routes_through_engine_map():
    spy = SpyExecutor()
    scheme, records = _build("pb", spy)
    oracle = PlaintextRangeIndex(records)
    outcome = scheme.query(10, 60)
    assert outcome.ids == frozenset(oracle.query(10, 60))
    assert spy.map_calls >= 1
    assert outcome.probes_issued > 0


def test_exec_stats_reported_in_query_outcome():
    spy = SpyExecutor()
    scheme, _ = _build("constant-brc", spy)
    outcome = scheme.query(30, 80)
    assert outcome.tokens_expanded > 0
    assert outcome.probes_issued >= outcome.tokens_expanded
    assert outcome.cache_hits == 0  # spy runs cache-disabled
    # Coalescing happened: more than one walker shared get_many rounds.
    assert outcome.probes_coalesced > 0


def test_server_search_routes_through_engine():
    spy = SpyExecutor()
    server = RsseServer(executor=spy)
    scheme = make_scheme("logarithmic-brc", 128, rng=random.Random(3))
    client = RemoteRangeClient(scheme, server.handle, rng=random.Random(4))
    records = [(i, (i * 11) % 128) for i in range(70)]
    client.outsource(records)
    spy.sse_calls = spy.dprf_calls = 0
    oracle = PlaintextRangeIndex(records)
    assert client.query(15, 90) == frozenset(oracle.query(15, 90))
    assert spy.sse_calls >= 1


def test_server_dprf_search_routes_through_engine():
    spy = SpyExecutor()
    server = RsseServer(executor=spy)
    scheme = make_scheme(
        "constant-brc",
        128,
        rng=random.Random(5),
        intersection_policy="allow",
    )
    client = RemoteRangeClient(scheme, server.handle, rng=random.Random(6))
    records = [(i, (i * 7) % 128) for i in range(70)]
    client.outsource(records)
    spy.sse_calls = spy.dprf_calls = 0
    oracle = PlaintextRangeIndex(records)
    assert client.query(5, 77) == frozenset(oracle.query(5, 77))
    assert spy.dprf_calls >= 1


def test_interactive_scheme_routes_both_phases():
    spy = SpyExecutor()
    scheme, records = _build("logarithmic-src-i", spy)
    _forbid_per_token_loop(scheme)
    oracle = PlaintextRangeIndex(records)
    outcome = scheme.query(25, 66)
    assert outcome.ids == frozenset(oracle.query(25, 66))
    assert spy.sse_calls >= 2  # one engine run per round
    assert outcome.rounds == 2
