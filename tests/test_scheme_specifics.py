"""Scheme-specific behaviour beyond plain correctness.

Each class pins down a property the paper attributes to exactly one
construction: Quadratic's single-token queries, Constant's intersection
guard and O(n) index, Logarithmic's token counts, SRC's single token,
SRC-i's two rounds and distinct-value compaction.
"""

from __future__ import annotations

import random

import pytest

from repro.core.constant import ConstantBrc, ConstantUrc, DprfRangeToken
from repro.core.log_src import LogarithmicSrc
from repro.core.log_src_i import LogarithmicSrcI
from repro.core.logarithmic import LogarithmicBrc, LogarithmicUrc
from repro.core.quadratic import Quadratic
from repro.core.scheme import MultiKeywordToken
from repro.errors import DomainError, IndexStateError, QueryIntersectionError


def records_uniform(n, domain, seed=1):
    rng = random.Random(seed)
    return [(i, rng.randrange(domain)) for i in range(n)]


class TestQuadratic:
    def test_single_token_queries(self):
        scheme = Quadratic(32, rng=random.Random(1))
        scheme.build_index(records_uniform(20, 32))
        token = scheme.trapdoor(3, 19)
        assert len(token) == 1

    def test_domain_ceiling_enforced(self):
        with pytest.raises(DomainError):
            Quadratic(1000)

    def test_ceiling_configurable(self):
        Quadratic(300, max_domain=300)  # no raise

    def test_replication_factor_quadratic(self):
        # A single tuple at value v is replicated into (v+1)*(m-v)
        # subranges; its index entries must match exactly.
        scheme = Quadratic(8, rng=random.Random(1))
        scheme.build_index([(0, 3)])
        assert len(scheme._index) == (3 + 1) * (8 - 3)


class TestConstantSchemes:
    def test_index_entries_linear_in_n(self):
        scheme = ConstantBrc(1 << 16, rng=random.Random(1), intersection_policy="allow")
        scheme.build_index(records_uniform(100, 1 << 16))
        assert len(scheme._index) == 100  # exactly one entry per tuple

    def test_intersection_guard_raises(self):
        scheme = ConstantBrc(256, rng=random.Random(1))
        scheme.build_index(records_uniform(10, 256))
        scheme.query(10, 20)
        with pytest.raises(QueryIntersectionError):
            scheme.query(15, 30)

    def test_non_intersecting_queries_allowed(self):
        scheme = ConstantBrc(256, rng=random.Random(1))
        scheme.build_index(records_uniform(10, 256))
        scheme.query(10, 20)
        scheme.query(21, 30)  # touching but disjoint: fine
        scheme.query(0, 9)

    def test_guard_reset(self):
        scheme = ConstantUrc(256, rng=random.Random(1))
        scheme.build_index(records_uniform(10, 256))
        scheme.query(10, 20)
        scheme.guard.reset()
        scheme.query(15, 30)  # permitted after reset

    def test_allow_policy_permits_intersections(self):
        scheme = ConstantBrc(256, rng=random.Random(1), intersection_policy="allow")
        scheme.build_index(records_uniform(10, 256))
        scheme.query(10, 20)
        scheme.query(15, 30)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            ConstantBrc(256, intersection_policy="maybe")

    def test_token_is_dprf_delegation(self):
        scheme = ConstantBrc(256, rng=random.Random(1), intersection_policy="allow")
        scheme.build_index(records_uniform(10, 256))
        token = scheme.trapdoor(0, 255)
        assert isinstance(token, DprfRangeToken)
        # Whole domain = single root token.
        assert len(token) == 1 and token.tokens[0].level == 8

    def test_brc_vs_urc_token_counts(self):
        brc = ConstantBrc(256, rng=random.Random(1), intersection_policy="allow")
        urc = ConstantUrc(256, rng=random.Random(1), intersection_policy="allow")
        for scheme in (brc, urc):
            scheme.build_index(records_uniform(10, 256))
        # Aligned range [64, 127]: BRC needs 1 node, URC breaks it down.
        assert len(brc.trapdoor(64, 127)) == 1
        assert len(urc.trapdoor(64, 127)) > 1


class TestLogarithmicSchemes:
    def test_index_entries_logarithmic_replication(self):
        domain_bits = 10
        scheme = LogarithmicBrc(1 << domain_bits, rng=random.Random(1))
        scheme.build_index(records_uniform(50, 1 << domain_bits))
        assert len(scheme._index) == 50 * (domain_bits + 1)

    def test_token_count_matches_cover(self):
        scheme = LogarithmicBrc(256, rng=random.Random(1))
        scheme.build_index(records_uniform(10, 256))
        assert len(scheme.trapdoor(2, 7)) == 2  # paper Fig 1: N2,3 + N4,7

    def test_urc_token_count_position_independent(self):
        scheme = LogarithmicUrc(1 << 12, rng=random.Random(1))
        scheme.build_index(records_uniform(10, 1 << 12))
        counts = {len(scheme.trapdoor(lo, lo + 99)) for lo in range(0, 3000, 83)}
        assert len(counts) == 1

    def test_result_partitions_union_is_answer(self, small_records, small_oracle):
        scheme = LogarithmicBrc(512, rng=random.Random(1))
        scheme.build_index(small_records)
        token = scheme.trapdoor(50, 300)
        partitions = scheme.result_partitions(token)
        flattened = sorted(i for group in partitions for i in group)
        assert flattened == sorted(small_oracle.query(50, 300))

    def test_tokens_shuffled_across_queries(self):
        scheme = LogarithmicBrc(1 << 12, rng=random.Random(1))
        scheme.build_index(records_uniform(5, 1 << 12))
        orders = {
            tuple(t.label_key for t in scheme.trapdoor(3, 2900)) for _ in range(10)
        }
        assert len(orders) > 1


class TestLogarithmicSrc:
    def test_always_single_token(self):
        scheme = LogarithmicSrc(1 << 12, rng=random.Random(1))
        scheme.build_index(records_uniform(50, 1 << 12))
        for lo, hi in [(0, 0), (5, 3000), (0, (1 << 12) - 1), (2047, 2048)]:
            assert len(scheme.trapdoor(lo, hi)) == 1

    def test_same_cover_same_token_keyword(self):
        """Two ranges under the same TDAG node produce the same token —
        the subtle search-pattern extension of Section 6.2."""
        scheme = LogarithmicSrc(8, rng=random.Random(1))
        scheme.build_index([(0, 2)])
        t1 = scheme.trapdoor(2, 7)  # SRC -> root
        t2 = scheme.trapdoor(1, 6)  # SRC -> root as well
        assert t1.tokens[0] == t2.tokens[0]


class TestLogarithmicSrcI:
    def test_two_rounds_reported(self, small_records):
        scheme = LogarithmicSrcI(512, rng=random.Random(1))
        scheme.build_index(small_records)
        outcome = scheme.query(50, 300)
        assert outcome.rounds == 2

    def test_single_round_when_nothing_qualifies(self):
        scheme = LogarithmicSrcI(512, rng=random.Random(1))
        scheme.build_index([(0, 10), (1, 500)])
        outcome = scheme.query(100, 300)
        assert outcome.rounds == 1 and outcome.ids == frozenset()

    def test_distinct_value_compaction(self):
        # 100 tuples, only 3 distinct values -> I1 indexes 3 documents.
        records = [(i, [10, 20, 30][i % 3]) for i in range(100)]
        scheme = LogarithmicSrcI(64, rng=random.Random(1))
        scheme.build_index(records)
        assert scheme.distinct_values == 3

    def test_phase_methods_compose(self, small_records, small_oracle):
        scheme = LogarithmicSrcI(512, rng=random.Random(1))
        scheme.build_index(small_records)
        lo, hi = 40, 260
        token1 = scheme.trapdoor_phase1(lo, hi)
        triples = scheme.search_phase1(token1)
        merged = scheme.merge_qualifying(triples, lo, hi)
        assert merged is not None
        token2 = scheme.trapdoor_phase2(*merged)
        raw = scheme.search_phase2(token2)
        refined = {rec.id for rec in scheme.resolve(raw) if lo <= rec.value <= hi}
        assert sorted(refined) == sorted(small_oracle.query(lo, hi))

    def test_plain_search_rejected(self, small_records):
        scheme = LogarithmicSrcI(512, rng=random.Random(1))
        scheme.build_index(small_records)
        with pytest.raises(IndexStateError):
            scheme.search(scheme.trapdoor(0, 10))

    def test_merged_positions_contiguous(self, small_records):
        scheme = LogarithmicSrcI(512, rng=random.Random(1))
        scheme.build_index(small_records)
        token1 = scheme.trapdoor_phase1(100, 200)
        triples = scheme.search_phase1(token1)
        qualifying = sorted(t for t in triples if 100 <= t[0] <= 200)
        for (v1, l1, h1), (v2, l2, h2) in zip(qualifying, qualifying[1:]):
            assert h1 + 1 == l2, "qualifying position runs must be contiguous"


class TestTokenSizes:
    def test_multi_keyword_token_size(self):
        scheme = LogarithmicBrc(256, rng=random.Random(1))
        scheme.build_index(records_uniform(10, 256))
        token = scheme.trapdoor(2, 7)
        assert token.serialized_size() == 32 * len(token)

    def test_dprf_token_size(self):
        scheme = ConstantBrc(256, rng=random.Random(1), intersection_policy="allow")
        scheme.build_index(records_uniform(10, 256))
        token = scheme.trapdoor(2, 7)
        assert token.serialized_size() == 33 * len(token)
