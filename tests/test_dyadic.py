"""Unit tests for the dyadic node algebra and DomainTree."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.covers.dyadic import DomainTree, Node, leaf
from repro.errors import DomainError, InvalidRangeError


class TestNode:
    def test_leaf_range(self):
        node = Node(0, 5)
        assert (node.lo, node.hi, node.size) == (5, 5, 1)

    def test_internal_range(self):
        node = Node(2, 1)  # covers [4, 7]
        assert (node.lo, node.hi, node.size) == (4, 7, 4)

    def test_covers_value(self):
        node = Node(2, 1)
        assert node.covers_value(4) and node.covers_value(7)
        assert not node.covers_value(3) and not node.covers_value(8)

    def test_covers_range(self):
        node = Node(3, 0)  # [0, 7]
        assert node.covers_range(2, 7)
        assert not node.covers_range(2, 8)

    def test_children(self):
        left, right = Node(2, 1).children()
        assert (left.lo, left.hi) == (4, 5)
        assert (right.lo, right.hi) == (6, 7)

    def test_leaf_has_no_children(self):
        with pytest.raises(DomainError):
            Node(0, 3).children()

    def test_parent(self):
        assert Node(1, 2).parent() == Node(2, 1)
        assert Node(1, 3).parent() == Node(2, 1)

    def test_parent_child_round_trip(self):
        node = Node(3, 5)
        for child in node.children():
            assert child.parent() == node

    def test_label_unambiguous(self):
        assert Node(1, 2).label() != Node(2, 1).label()

    def test_ordering(self):
        assert Node(0, 1) < Node(0, 2) < Node(1, 0)

    def test_negative_rejected(self):
        with pytest.raises(DomainError):
            Node(-1, 0)
        with pytest.raises(DomainError):
            Node(0, -1)

    def test_leaf_helper(self):
        assert leaf(9) == Node(0, 9)

    @given(st.integers(0, 20), st.integers(0, 1 << 20))
    def test_size_matches_range(self, level, index):
        node = Node(level, index)
        assert node.hi - node.lo + 1 == node.size == 1 << level


class TestDomainTree:
    def test_power_of_two_domain(self):
        tree = DomainTree(8)
        assert tree.height == 3 and tree.padded_size == 8

    def test_non_power_of_two_padded(self):
        tree = DomainTree(5)
        assert tree.height == 3 and tree.padded_size == 8

    def test_domain_of_one(self):
        tree = DomainTree(1)
        assert tree.padded_size == 2  # minimum height 1
        tree.check_value(0)
        with pytest.raises(DomainError):
            tree.check_value(1)

    def test_from_bits(self):
        tree = DomainTree.from_bits(10)
        assert tree.domain_size == 1024 and tree.height == 10

    def test_root_covers_everything(self):
        tree = DomainTree(100)
        assert tree.root.covers_range(0, 99)

    def test_invalid_domain(self):
        with pytest.raises(DomainError):
            DomainTree(0)

    def test_check_value_bounds(self):
        tree = DomainTree(10)
        tree.check_value(0)
        tree.check_value(9)
        for bad in (-1, 10, 11):
            with pytest.raises(DomainError):
                tree.check_value(bad)

    def test_check_value_rejects_bool_and_float(self):
        tree = DomainTree(10)
        with pytest.raises(DomainError):
            tree.check_value(True)
        with pytest.raises(DomainError):
            tree.check_value(1.5)  # type: ignore[arg-type]

    def test_check_range_inverted(self):
        tree = DomainTree(10)
        with pytest.raises(InvalidRangeError):
            tree.check_range(5, 3)

    def test_path_nodes_root_to_leaf(self):
        tree = DomainTree(8)
        path = tree.path_nodes(6)
        assert path[0] == tree.root
        assert path[-1] == Node(0, 6)
        assert len(path) == 4
        for node in path:
            assert node.covers_value(6)

    def test_value_bits_match_paper_example(self):
        # Value 6 over {0..7} is (110)2: right, right, left.
        tree = DomainTree(8)
        assert tree.value_bits(6) == [1, 1, 0]

    def test_node_in_tree(self):
        tree = DomainTree(8)
        assert tree.node_in_tree(Node(3, 0))
        assert not tree.node_in_tree(Node(3, 1))
        assert not tree.node_in_tree(Node(4, 0))
        assert tree.node_in_tree(Node(0, 7))
        assert not tree.node_in_tree(Node(0, 8))

    @given(st.integers(2, 1 << 16), st.data())
    def test_path_consistency(self, domain, data):
        tree = DomainTree(domain)
        value = data.draw(st.integers(0, domain - 1))
        path = tree.path_nodes(value)
        assert len(path) == tree.height + 1
        for parent, child in zip(path, path[1:]):
            assert child.parent() == parent
