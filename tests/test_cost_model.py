"""Cost-model accuracy: plan estimates must track realized engine work.

The dispatcher is only as good as :func:`~repro.exec.plan.plan_range`'s
estimates, so these tests pin them to the realized
:class:`~repro.core.scheme.QueryOutcome` stats (``tokens_expanded``,
``probes_issued``) for sampled ranges, within fixed tolerances.  If the
planner and the engine ever drift apart — a changed walk strategy, a
different expansion path — the tolerance breaks here instead of the
dispatcher silently mispricing every query.
"""

from __future__ import annotations

import random

import pytest

from repro.core.registry import make_scheme
from repro.exec import CostModel, QueryExecutor, calibrate_cost_model, plan_range
from repro.exec.dispatch import STRATEGIES
from repro.storage.backend import InMemoryBackend

DOMAIN = 1 << 10

#: Sampled query shapes: points, narrow, wide, domain-wide.
RANGES = ((5, 5), (100, 131), (40, 700), (0, DOMAIN - 1), (513, 529))


def _built(scheme_name: str, records: int = 400):
    """A built scheme on a cache-free serial engine (deterministic
    stats: every expansion and probe is really performed)."""
    kwargs = {
        "rng": random.Random(3),
        "executor": QueryExecutor(workers=1, cache=False),
    }
    if scheme_name.startswith("constant"):
        kwargs["intersection_policy"] = "allow"
    scheme = make_scheme(scheme_name, DOMAIN, **kwargs)
    rng = random.Random(17)
    scheme.build_index([(rid, rng.randrange(DOMAIN)) for rid in range(records)])
    return scheme


def _plan_for(scheme_name: str, lo: int, hi: int):
    strategy = STRATEGIES[scheme_name]
    return plan_range(
        lo,
        hi,
        cover=strategy.cover,
        domain_size=DOMAIN,
        delegated=strategy.delegated,
        scheme=scheme_name,
    )


class TestDelegatedEstimates:
    """Constant family: expansion counts are exact, probe counts bounded."""

    @pytest.mark.parametrize("lo,hi", RANGES)
    def test_tokens_expanded_matches_expand_stage(self, lo, hi):
        scheme = _built("constant-brc")
        plan = _plan_for("constant-brc", lo, hi)
        outcome = scheme.query(lo, hi)
        # Cache disabled: every cover token must expand exactly once.
        assert outcome.tokens_expanded == plan.stages[0].units
        assert outcome.tokens_expanded == plan.meta["cover_nodes"]

    @pytest.mark.parametrize("lo,hi", RANGES)
    def test_probes_within_tolerance(self, lo, hi):
        scheme = _built("constant-brc")
        plan = _plan_for("constant-brc", lo, hi)
        outcome = scheme.query(lo, hi)
        # Every GGM leaf becomes one walker probing at least once; the
        # geometric counter walk can at most double the touched labels
        # plus speculation slack around each posting list.
        floor = plan.est_leaves
        ceiling = 2 * plan.est_leaves + 4 * len(outcome.raw_ids) + 8
        assert floor <= outcome.probes_issued <= ceiling

    def test_leaf_estimate_is_exact_for_delegation(self):
        plan = _plan_for("constant-brc", 40, 700)
        # BRC over [40, 700] covers exactly 661 leaves: the delegated
        # plan's walker count is the range width, not an estimate.
        assert plan.est_leaves == 700 - 40 + 1


class TestSseEstimates:
    """Logarithmic family: walker count == cover size, probes bounded."""

    @pytest.mark.parametrize("scheme_name", ["logarithmic-brc", "logarithmic-src"])
    @pytest.mark.parametrize("lo,hi", RANGES)
    def test_probes_within_tolerance(self, scheme_name, lo, hi):
        scheme = _built(scheme_name)
        plan = _plan_for(scheme_name, lo, hi)
        outcome = scheme.query(lo, hi)
        assert outcome.tokens_expanded == 0  # nothing delegated
        floor = plan.est_leaves
        ceiling = 2 * plan.est_leaves + 4 * len(outcome.raw_ids) + 8
        assert floor <= outcome.probes_issued <= ceiling


class TestCostModelOrdering:
    """The scalar estimate must order plans the way the units order."""

    def test_wider_delegation_costs_more(self):
        model = CostModel()
        narrow = model.estimate(_plan_for("constant-brc", 10, 17))
        wide = model.estimate(_plan_for("constant-brc", 0, DOMAIN - 1))
        assert wide > narrow

    def test_fp_term_penalizes_src(self):
        model = CostModel()
        plan = _plan_for("logarithmic-src", 100, 131)
        clean = model.estimate(plan, expected_matches=4.0)
        fp_heavy = model.estimate(plan, expected_matches=4.0, expected_fps=300.0)
        assert fp_heavy > clean + 200 * model.fetch_seconds

    def test_interactive_round_trip_priced(self):
        model = CostModel()
        plan = _plan_for("logarithmic-src-i", 100, 131)
        one = model.estimate(plan, rounds=1)
        two = model.estimate(plan, rounds=2)
        assert two == pytest.approx(one + model.rtt_seconds)


class TestCalibration:
    def test_calibrated_weights_are_positive_and_flagged(self):
        model = calibrate_cost_model(InMemoryBackend(), repeats=1)
        assert model.calibrated
        for value in (
            model.expand_seconds,
            model.derive_seconds,
            model.probe_seconds,
            model.round_seconds,
            model.fetch_seconds,
            model.rtt_seconds,
        ):
            assert 0 < value < 1.0

    def test_calibration_leaves_no_state_behind(self):
        backend = InMemoryBackend()
        calibrate_cost_model(backend, repeats=1)
        assert list(backend.namespaces()) == []

    def test_default_model_is_uncalibrated(self):
        assert not CostModel().calibrated
