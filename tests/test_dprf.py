"""Unit and property tests for the GGM-based Delegatable PRF.

The delegation contract under test: for any range, expanding the
delegated tokens yields *exactly* the multiset of leaf PRF values the
key holder would compute directly — nothing more, nothing less.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.covers.dyadic import Node
from repro.crypto.dprf import COVER_BRC, COVER_URC, DelegationToken, GgmDprf
from repro.crypto.prg import SEED_LEN
from repro.errors import InvalidRangeError, KeyError_, TokenError

KEY = GgmDprf.generate_key(random.Random(1))


class TestEvaluate:
    def test_deterministic(self):
        dprf = GgmDprf(256)
        assert dprf.evaluate(KEY, 77) == dprf.evaluate(KEY, 77)

    def test_injective_on_small_domain(self):
        dprf = GgmDprf(64)
        values = {dprf.evaluate(KEY, v) for v in range(64)}
        assert len(values) == 64

    def test_key_sensitivity(self):
        dprf = GgmDprf(64)
        other = GgmDprf.generate_key(random.Random(2))
        assert dprf.evaluate(KEY, 5) != dprf.evaluate(other, 5)

    def test_paper_example_value_6(self):
        # f_k(6) = G0(G1(G1(k))) over domain {0..7}.
        from repro.crypto.prg import g0, g1

        dprf = GgmDprf(8)
        assert dprf.evaluate(KEY, 6) == g0(g1(g1(KEY)))

    def test_rejects_out_of_domain(self):
        dprf = GgmDprf(8)
        with pytest.raises(Exception):
            dprf.evaluate(KEY, 8)

    def test_rejects_bad_key(self):
        dprf = GgmDprf(8)
        with pytest.raises(KeyError_):
            dprf.evaluate(b"short", 3)


class TestNodeSeed:
    def test_root_seed_is_key(self):
        dprf = GgmDprf(8)
        assert dprf.node_seed(KEY, Node(3, 0)) == KEY

    def test_leaf_seed_is_evaluation(self):
        dprf = GgmDprf(8)
        assert dprf.node_seed(KEY, Node(0, 6)) == dprf.evaluate(KEY, 6)

    def test_outside_tree_rejected(self):
        dprf = GgmDprf(8)
        with pytest.raises(InvalidRangeError):
            dprf.node_seed(KEY, Node(4, 0))


class TestDelegationToken:
    def test_leaf_count(self):
        token = DelegationToken(bytes(SEED_LEN), 3)
        assert token.leaf_count == 8

    def test_serialized_size(self):
        token = DelegationToken(bytes(SEED_LEN), 3)
        assert token.serialized_size() == SEED_LEN + 1

    def test_rejects_negative_level(self):
        with pytest.raises(TokenError):
            DelegationToken(bytes(SEED_LEN), -1)

    def test_rejects_bad_seed_length(self):
        with pytest.raises(TokenError):
            DelegationToken(b"short", 1)


class TestExpansion:
    def test_level_zero_is_identity(self):
        token = DelegationToken(KEY, 0)
        assert GgmDprf.expand_token(token) == [KEY]

    def test_expansion_count(self):
        for level in range(5):
            token = DelegationToken(KEY, level)
            assert len(GgmDprf.expand_token(token)) == 1 << level

    def test_expansion_matches_direct_evaluation(self):
        dprf = GgmDprf(16)
        # Node(2, 1) covers values 4..7.
        seed = dprf.node_seed(KEY, Node(2, 1))
        expanded = GgmDprf.expand_token(DelegationToken(seed, 2))
        direct = [dprf.evaluate(KEY, v) for v in range(4, 8)]
        assert expanded == direct


@st.composite
def domain_ranges(draw):
    bits = draw(st.integers(1, 12))
    domain = 1 << bits
    lo = draw(st.integers(0, domain - 1))
    hi = draw(st.integers(lo, domain - 1))
    return domain, lo, hi


class TestDelegation:
    @pytest.mark.parametrize("cover", [COVER_BRC, COVER_URC])
    def test_delegation_equals_direct_exhaustive(self, cover):
        dprf = GgmDprf(32)
        for lo in range(32):
            for hi in range(lo, 32):
                tokens = dprf.delegate(
                    KEY, lo, hi, cover=cover, shuffle_rng=random.Random(0)
                )
                expanded = sorted(GgmDprf.expand_all(tokens))
                direct = sorted(dprf.evaluate(KEY, v) for v in range(lo, hi + 1))
                assert expanded == direct, (cover, lo, hi)

    @pytest.mark.parametrize("cover", [COVER_BRC, COVER_URC])
    @given(domain_ranges())
    # deadline=None like the suite's other heavy hypothesis tests: a
    # 4096-value range is ~8k GGM evaluations, and wall-clock deadlines
    # flake under CI load.
    @settings(max_examples=100, deadline=None)
    def test_delegation_equals_direct_random(self, cover, dr):
        domain, lo, hi = dr
        dprf = GgmDprf(domain)
        tokens = dprf.delegate(KEY, lo, hi, cover=cover, shuffle_rng=random.Random(0))
        assert sorted(GgmDprf.expand_all(tokens)) == sorted(
            dprf.evaluate(KEY, v) for v in range(lo, hi + 1)
        )

    def test_tokens_are_shuffled(self):
        dprf = GgmDprf(1 << 10)
        orders = {
            tuple(t.seed for t in dprf.delegate(KEY, 3, 900, shuffle_rng=random.Random(s)))
            for s in range(20)
        }
        assert len(orders) > 1  # permutation actually varies

    def test_urc_token_count_position_independent(self):
        dprf = GgmDprf(1 << 10)
        counts = {
            len(dprf.delegate(KEY, lo, lo + 99, cover=COVER_URC, shuffle_rng=random.Random(0)))
            for lo in range(0, 900, 37)
        }
        assert len(counts) == 1

    def test_brc_token_count_varies_with_position(self):
        dprf = GgmDprf(1 << 10)
        counts = {
            len(dprf.delegate(KEY, lo, lo + 99, cover=COVER_BRC, shuffle_rng=random.Random(0)))
            for lo in range(0, 900, 7)
        }
        assert len(counts) > 1

    def test_unknown_cover_rejected(self):
        dprf = GgmDprf(16)
        with pytest.raises(ValueError):
            dprf.delegate(KEY, 0, 3, cover="src")

    def test_delegation_does_not_reveal_outside_range(self):
        """Expanded values of [lo, hi] never include a leaf outside it."""
        dprf = GgmDprf(64)
        tokens = dprf.delegate(KEY, 10, 20, shuffle_rng=random.Random(0))
        expanded = set(GgmDprf.expand_all(tokens))
        outside = {dprf.evaluate(KEY, v) for v in list(range(0, 10)) + list(range(21, 64))}
        assert not expanded & outside
