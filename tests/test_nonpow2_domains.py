"""Non-power-of-two domains: the padding boundary is where bugs live.

Every tree in the library pads the domain to ``2^ceil(log2 m)``; values
and queries near ``m-1`` sit against padding the server must never
conflate with real data.  These tests pin the boundary for every scheme
and substrate.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.pb import PbScheme
from repro.baselines.plaintext import PlaintextRangeIndex
from repro.core.registry import EXPERIMENT_SCHEMES, make_scheme
from repro.covers.brc import best_range_cover
from repro.covers.tdag import Tdag
from repro.covers.urc import uniform_range_cover
from repro.crypto.dprf import GgmDprf
from repro.errors import DomainError

#: Deliberately awkward domain sizes: odd, prime, one-past-pow2, pow2-1.
DOMAINS = (3, 97, 300, 513, 1023)


def records_for(domain, n=80, seed=1):
    rng = random.Random(seed)
    values = [rng.randrange(domain) for _ in range(n - 2)]
    values += [0, domain - 1]  # force both extremes into the dataset
    return [(i, v) for i, v in enumerate(values)]


@pytest.mark.parametrize("domain", DOMAINS)
@pytest.mark.parametrize("name", EXPERIMENT_SCHEMES)
class TestSchemesOnAwkwardDomains:
    def test_boundary_queries_exact(self, name, domain):
        records = records_for(domain)
        oracle = PlaintextRangeIndex(records)
        extra = {"intersection_policy": "allow"} if name.startswith("constant") else {}
        scheme = make_scheme(name, domain, rng=random.Random(2), **extra)
        scheme.build_index(records)
        probes = [
            (0, domain - 1),
            (domain - 1, domain - 1),
            (0, 0),
            (domain // 2, domain - 1),
        ]
        for lo, hi in probes:
            assert sorted(scheme.query(lo, hi).ids) == sorted(
                oracle.query(lo, hi)
            ), (name, domain, lo, hi)

    def test_padding_values_rejected(self, name, domain):
        extra = {"intersection_policy": "allow"} if name.startswith("constant") else {}
        scheme = make_scheme(name, domain, rng=random.Random(2), **extra)
        with pytest.raises(DomainError):
            scheme.build_index([(0, domain)])  # first padded value
        scheme2 = make_scheme(name, domain, rng=random.Random(2), **extra)
        scheme2.build_index([(0, 0)])
        with pytest.raises(DomainError):
            scheme2.query(0, domain)


@pytest.mark.parametrize("domain", DOMAINS)
class TestSubstratesOnAwkwardDomains:
    def test_pb_boundary(self, domain):
        records = records_for(domain, n=40)
        oracle = PlaintextRangeIndex(records)
        scheme = PbScheme(domain, rng=random.Random(3))
        scheme.build_index(records)
        assert sorted(scheme.query(0, domain - 1).ids) == sorted(
            oracle.query(0, domain - 1)
        )

    def test_covers_never_emit_padding_only_nodes_for_real_ranges(self, domain):
        # Covers of in-domain ranges may extend into padding only via a
        # node that also contains real values — but BRC/URC are exact,
        # so no emitted node may lie entirely in padding.
        for cover_fn in (best_range_cover, uniform_range_cover):
            nodes = cover_fn(0, domain - 1)
            for node in nodes:
                assert node.lo <= domain - 1

    def test_tdag_src_cover_at_boundary(self, domain):
        tdag = Tdag(domain)
        node = tdag.src_cover(domain - 1, domain - 1)
        assert node.covers_value(domain - 1)
        node_full = tdag.src_cover(0, domain - 1)
        assert node_full.covers_range(0, domain - 1)

    def test_dprf_delegation_at_boundary(self, domain):
        dprf = GgmDprf(domain)
        key = GgmDprf.generate_key(random.Random(4))
        lo = max(0, domain - 5)
        tokens = dprf.delegate(key, lo, domain - 1, shuffle_rng=random.Random(0))
        expanded = sorted(GgmDprf.expand_all(tokens))
        direct = sorted(dprf.evaluate(key, v) for v in range(lo, domain))
        assert expanded == direct
