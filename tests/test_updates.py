"""Unit and integration tests for the batch-update framework."""

from __future__ import annotations

import random

import pytest

from repro.core.logarithmic import LogarithmicBrc
from repro.core.log_src_i import LogarithmicSrcI
from repro.errors import UpdateError
from repro.updates import (
    BatchUpdateManager,
    OpKind,
    UpdateOp,
    delete,
    insert,
    modify,
)

DOMAIN = 1 << 12


def make_manager(s=3, seed=5, scheme_cls=LogarithmicBrc):
    # Each factory call must yield *independent* keys (forward privacy!),
    # so derive a fresh seed per instance from one master RNG.
    seeder = random.Random(seed * 7919)
    return BatchUpdateManager(
        lambda: scheme_cls(DOMAIN, rng=random.Random(seeder.randrange(2**62))),
        consolidation_step=s,
        rng=random.Random(seed),
    )


class TestOps:
    def test_encode_round_trip(self):
        for op in (insert(5, 99), delete(7, 3)):
            assert UpdateOp.decode(op.encode()) == op

    def test_decode_rejects_bad_length(self):
        with pytest.raises(UpdateError):
            UpdateOp.decode(b"\x00" * 5)

    def test_modify_decomposes(self):
        ops = modify(5, 10, 20)
        assert ops[0] == delete(5, 10) and ops[1] == insert(5, 20)

    def test_kind_values_stable(self):
        assert OpKind.INSERT.value == 0 and OpKind.DELETE.value == 1


class TestLifecycle:
    def test_empty_batch_rejected(self):
        with pytest.raises(UpdateError):
            make_manager().apply_batch([])

    def test_bad_consolidation_step(self):
        with pytest.raises(UpdateError):
            make_manager(s=1)

    def test_insert_then_query(self):
        mgr = make_manager()
        mgr.apply_batch([insert(i, i) for i in range(10)])
        assert mgr.query(3, 6).ids == {3, 4, 5, 6}

    def test_delete_suppresses_older_insert(self):
        mgr = make_manager()
        mgr.apply_batch([insert(1, 100), insert(2, 101)])
        mgr.apply_batch([delete(1, 100)])
        assert mgr.query(90, 110).ids == {2}

    def test_delete_and_reinsert(self):
        mgr = make_manager()
        mgr.apply_batch([insert(1, 100)])
        mgr.apply_batch([delete(1, 100)])
        mgr.apply_batch([insert(1, 100)])
        assert mgr.query(100, 100).ids == {1}

    def test_modify_moves_value(self):
        mgr = make_manager()
        mgr.apply_batch([insert(1, 100)])
        mgr.apply_batch(modify(1, 100, 200))
        assert mgr.query(100, 100).ids == frozenset()
        assert mgr.query(200, 200).ids == {1}

    def test_modify_within_single_batch(self):
        mgr = make_manager()
        mgr.apply_batch([insert(1, 100)] + modify(1, 100, 200))
        assert mgr.query(0, DOMAIN - 1).ids == {1}
        assert mgr.query(200, 200).ids == {1}
        assert mgr.query(100, 100).ids == frozenset()


class TestConsolidation:
    def test_merge_triggered_at_step(self):
        mgr = make_manager(s=3)
        for b in range(3):
            mgr.apply_batch([insert(b, b)])
        assert mgr.stats.consolidations == 1
        assert mgr.active_indexes == 1
        assert mgr.levels() == {1: 1}

    def test_hierarchical_merging(self):
        mgr = make_manager(s=2)
        for b in range(8):
            mgr.apply_batch([insert(b, b)])
        # 8 batches with s=2 cascade into a single level-3 index.
        assert mgr.levels() == {3: 1}
        assert mgr.query(0, 7).ids == set(range(8))

    def test_bounded_active_indexes(self):
        mgr = make_manager(s=4)
        for b in range(21):
            mgr.apply_batch([insert(b, b % DOMAIN)])
        # O(s * log_s b): far below the 21 un-merged indexes.
        assert mgr.active_indexes <= 8

    def test_tombstones_purged_on_full_merge(self):
        mgr = make_manager(s=2)
        mgr.apply_batch([insert(1, 10), insert(2, 20)])
        mgr.apply_batch([delete(1, 10)])
        # Merge happened (2 batches, s=2) and no older level exists, so
        # the tombstone must be gone and the answer correct.
        assert mgr.stats.consolidations == 1
        assert mgr.query(0, 30).ids == {2}
        assert mgr.stats.tombstones_purged >= 1

    def test_consolidated_equals_unconsolidated(self):
        """An LSM-managed dataset answers exactly like one big index."""
        rng = random.Random(42)
        ops_per_batch = [
            [insert(b * 10 + i, rng.randrange(DOMAIN)) for i in range(10)]
            for b in range(9)
        ]
        merged_mgr = make_manager(s=3, seed=1)
        flat_mgr = make_manager(s=100, seed=2)  # never consolidates
        for ops in ops_per_batch:
            merged_mgr.apply_batch(list(ops))
            flat_mgr.apply_batch(list(ops))
        assert merged_mgr.active_indexes < flat_mgr.active_indexes
        for lo, hi in [(0, DOMAIN - 1), (100, 900), (0, 0)]:
            assert merged_mgr.query(lo, hi).ids == flat_mgr.query(lo, hi).ids


class TestForwardPrivacy:
    def test_fresh_keys_per_batch(self):
        """A trapdoor for batch 1's index retrieves nothing from batch 2's
        index — the token-non-transferability behind forward privacy."""
        mgr = make_manager(s=10)
        mgr.apply_batch([insert(1, 100)])
        mgr.apply_batch([insert(2, 100)])
        first, second = mgr._indexes
        token = first.scheme.trapdoor(50, 150)
        assert second.scheme.search(token) == []

    def test_consolidation_reencrypts(self):
        """After a merge, pre-merge trapdoors are useless on the new index."""
        mgr = make_manager(s=2)
        mgr.apply_batch([insert(1, 100)])
        old_scheme = mgr._indexes[0].scheme
        old_token = old_scheme.trapdoor(50, 150)
        mgr.apply_batch([insert(2, 100)])  # triggers merge
        new_scheme = mgr._indexes[0].scheme
        assert new_scheme is not old_scheme
        assert new_scheme.search(old_token) == []


class TestWithInteractiveScheme:
    def test_src_i_as_underlying_scheme(self):
        mgr = make_manager(scheme_cls=LogarithmicSrcI)
        mgr.apply_batch([insert(i, i * 3) for i in range(30)])
        mgr.apply_batch([delete(5, 15)])
        assert mgr.query(0, 30).ids == {0, 1, 2, 3, 4, 6, 7, 8, 9, 10}


class TestRandomizedEquivalence:
    def test_against_dict_model(self):
        """Drive random ops; the manager must match a dict reference."""
        rng = random.Random(123)
        mgr = make_manager(s=3, seed=9)
        model: dict[int, int] = {}
        next_id = 0
        for _ in range(12):
            batch = []
            for _ in range(rng.randrange(1, 8)):
                action = rng.random()
                if action < 0.6 or not model:
                    value = rng.randrange(DOMAIN)
                    batch.append(insert(next_id, value))
                    model[next_id] = value
                    next_id += 1
                elif action < 0.85:
                    victim = rng.choice(list(model))
                    batch.append(delete(victim, model.pop(victim)))
                else:
                    victim = rng.choice(list(model))
                    new_value = rng.randrange(DOMAIN)
                    batch.extend(modify(victim, model[victim], new_value))
                    model[victim] = new_value
            mgr.apply_batch(batch)
            lo = rng.randrange(DOMAIN)
            hi = rng.randrange(lo, DOMAIN)
            expected = {i for i, v in model.items() if lo <= v <= hi}
            assert mgr.query(lo, hi).ids == expected
