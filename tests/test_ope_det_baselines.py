"""Tests for the OPE and DET-bucketization baselines and their attacks."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.det_bucket import DetBucketIndex
from repro.baselines.ope import BoldyrevaOpe, OpeRangeIndex
from repro.baselines.plaintext import PlaintextRangeIndex
from repro.crypto.prf import generate_key
from repro.errors import DomainError
from repro.leakage.baseline_attacks import (
    det_histogram_attack,
    edb_at_rest_attack,
    ope_rank_attack,
)

KEY = generate_key(random.Random(1))


class TestBoldyrevaOpe:
    def test_deterministic(self):
        ope = BoldyrevaOpe(KEY, 1 << 10)
        assert ope.encrypt(500) == ope.encrypt(500)

    def test_strictly_monotone_exhaustive_small(self):
        ope = BoldyrevaOpe(KEY, 256)
        cts = [ope.encrypt(v) for v in range(256)]
        assert all(a < b for a, b in zip(cts, cts[1:]))

    def test_ciphertexts_within_space(self):
        ope = BoldyrevaOpe(KEY, 256, expansion=4)
        for v in range(0, 256, 17):
            assert 0 <= ope.encrypt(v) < ope.cipher_space

    def test_key_sensitivity(self):
        other = generate_key(random.Random(2))
        a = BoldyrevaOpe(KEY, 1 << 10)
        b = BoldyrevaOpe(other, 1 << 10)
        assert [a.encrypt(v) for v in range(0, 1024, 100)] != [
            b.encrypt(v) for v in range(0, 1024, 100)
        ]

    @given(st.integers(2, 1 << 16), st.data())
    @settings(max_examples=40, deadline=None)
    def test_monotone_random_pairs(self, domain, data):
        v1 = data.draw(st.integers(0, domain - 1))
        v2 = data.draw(st.integers(0, domain - 1))
        ope = BoldyrevaOpe(KEY, domain)
        c1, c2 = ope.encrypt(v1), ope.encrypt(v2)
        assert (v1 < v2) == (c1 < c2) or v1 == v2

    def test_domain_checks(self):
        ope = BoldyrevaOpe(KEY, 16)
        with pytest.raises(DomainError):
            ope.encrypt(16)
        with pytest.raises(DomainError):
            BoldyrevaOpe(KEY, 0)
        with pytest.raises(DomainError):
            BoldyrevaOpe(KEY, 16, expansion=1)


class TestOpeRangeIndex:
    def test_matches_oracle(self, small_records, small_oracle):
        index = OpeRangeIndex(KEY, 512)
        index.build_index(small_records)
        for lo, hi in [(0, 511), (10, 40), (250, 250), (100, 300)]:
            assert sorted(index.query(lo, hi)) == sorted(small_oracle.query(lo, hi))

    def test_no_false_positives(self, small_records, small_oracle):
        index = OpeRangeIndex(KEY, 512)
        index.build_index(small_records)
        assert len(index.query(100, 300)) == small_oracle.count(100, 300)

    def test_inverted_range_empty(self, small_records):
        index = OpeRangeIndex(KEY, 512)
        index.build_index(small_records)
        assert index.query(40, 10) == []

    def test_index_size(self, small_records):
        index = OpeRangeIndex(KEY, 512)
        index.build_index(small_records)
        assert index.index_size_bytes() == 16 * len(small_records)


class TestDetBucketIndex:
    def test_superset_of_oracle(self, small_records, small_oracle):
        index = DetBucketIndex(KEY, 512, buckets=32)
        index.build_index(small_records)
        for lo, hi in [(0, 511), (10, 40), (250, 250)]:
            assert set(small_oracle.query(lo, hi)) <= set(index.query(lo, hi))

    def test_edge_false_positives_only(self, small_records):
        """FPs can come only from the two edge buckets of the range."""
        index = DetBucketIndex(KEY, 512, buckets=32)
        index.build_index(small_records)
        values = dict(small_records)
        width = index._width
        lo, hi = 100, 300
        for doc_id in index.query(lo, hi):
            v = values[doc_id]
            assert (lo // width) * width <= v < (hi // width + 1) * width

    def test_fewer_buckets_more_false_positives(self, small_records, small_oracle):
        coarse = DetBucketIndex(KEY, 512, buckets=4)
        fine = DetBucketIndex(KEY, 512, buckets=128)
        for index in (coarse, fine):
            index.build_index(small_records)
        r = small_oracle.count(100, 140)
        assert len(coarse.query(100, 140)) - r >= len(fine.query(100, 140)) - r

    def test_exact_when_buckets_equal_domain(self, small_records, small_oracle):
        index = DetBucketIndex(KEY, 512, buckets=512)
        index.build_index(small_records)
        assert sorted(index.query(7, 300)) == sorted(small_oracle.query(7, 300))

    def test_histogram_is_visible(self, skewed_records):
        index = DetBucketIndex(KEY, 512, buckets=16)
        index.build_index(skewed_records)
        hist = index.histogram_view()
        # The heavy value's bucket dominates — exactly the leak.
        assert max(hist) >= 200

    def test_bucket_bounds(self):
        with pytest.raises(DomainError):
            DetBucketIndex(KEY, 16, buckets=0)
        with pytest.raises(DomainError):
            DetBucketIndex(KEY, 16, buckets=17)


class TestBaselineAttacks:
    def test_ope_order_fully_recovered(self, small_records):
        index = OpeRangeIndex(KEY, 512)
        index.build_index(small_records)
        values = dict(small_records)
        truth = [values[i] for i in index._ids]
        result = ope_rank_attack(
            index.ciphertexts(), index.ope.cipher_space, 512, truth
        )
        assert result.rank_correlation > 0.999
        assert result.mean_relative_error < 0.25

    def test_ope_attack_on_uniform_data_estimates_values(self):
        rng = random.Random(3)
        records = [(i, rng.randrange(1 << 12)) for i in range(500)]
        index = OpeRangeIndex(KEY, 1 << 12)
        index.build_index(records)
        values = dict(records)
        truth = [values[i] for i in index._ids]
        result = ope_rank_attack(
            index.ciphertexts(), index.ope.cipher_space, 1 << 12, truth
        )
        assert result.mean_relative_error < 0.15  # values nearly recovered

    def test_det_attack_localizes_skewed_data(self, skewed_records):
        index = DetBucketIndex(KEY, 512, buckets=16)
        index.build_index(skewed_records)
        occupancies = [len(ids) for ids in index._store.values()]
        # Perfect auxiliary knowledge: the reference IS the histogram.
        result = det_histogram_attack(occupancies, occupancies)
        assert result.histogram_distance == 0.0
        assert result.localization_accuracy > 0.5

    def test_rsse_edb_yields_nothing(self, small_records):
        from repro.core.logarithmic import LogarithmicBrc

        scheme = LogarithmicBrc(512, rng=random.Random(4))
        scheme.build_index(small_records)
        result = edb_at_rest_attack(scheme._index.to_bytes())
        assert result.rank_correlation == 0.0

    def test_empty_inputs(self):
        assert ope_rank_attack([], 10, 10, []).rank_correlation == 0.0
        assert det_histogram_attack([], []).localization_accuracy == 0.0
