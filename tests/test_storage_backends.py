"""Tests for the pluggable server-side storage backends."""

from __future__ import annotations

import pytest

from repro.storage import (
    FileBackend,
    InMemoryBackend,
    NamespaceMap,
    PrefixedBackend,
    ShardedBackend,
    SqliteBackend,
)

BACKENDS = ("memory", "sqlite", "sharded", "prefixed")


@pytest.fixture
def backend(request, tmp_path):
    kind = request.param
    if kind == "memory":
        yield InMemoryBackend()
    elif kind == "sqlite":
        be = SqliteBackend(tmp_path / "kv.sqlite")
        yield be
        be.close()
    elif kind == "sharded":
        yield ShardedBackend(shard_count=3)
    else:
        yield PrefixedBackend(InMemoryBackend(), "pfx/")


@pytest.mark.parametrize("backend", BACKENDS, indirect=True)
class TestBackendContract:
    def test_put_get_delete(self, backend):
        assert backend.get("ns", b"k") is None
        backend.put("ns", b"k", b"v")
        assert backend.get("ns", b"k") == b"v"
        backend.put("ns", b"k", b"v2")  # replace
        assert backend.get("ns", b"k") == b"v2"
        assert backend.delete("ns", b"k") is True
        assert backend.delete("ns", b"k") is False
        assert backend.get("ns", b"k") is None

    def test_namespaces_are_isolated(self, backend):
        backend.put("a", b"k", b"1")
        backend.put("b", b"k", b"2")
        assert backend.get("a", b"k") == b"1"
        assert backend.get("b", b"k") == b"2"
        backend.drop("a")
        assert backend.get("a", b"k") is None
        assert backend.get("b", b"k") == b"2"

    def test_items_keys_count(self, backend):
        entries = {bytes([i]) * 4: bytes([i]) * 8 for i in range(20)}
        backend.put_many("ns", entries.items())
        assert backend.count("ns") == 20
        assert dict(backend.items("ns")) == entries
        assert sorted(backend.keys("ns")) == sorted(entries)

    def test_drop_missing_namespace_is_noop(self, backend):
        backend.drop("never-created")  # must not raise

    def test_namespaces_listing(self, backend):
        backend.put("x", b"k", b"v")
        backend.put("y", b"k", b"v")
        assert {"x", "y"} <= set(backend.namespaces())


class TestSqlitePersistence:
    def test_reopen_sees_data(self, tmp_path):
        path = tmp_path / "kv.sqlite"
        be = SqliteBackend(path)
        be.put("ns", b"key", b"value")
        be.close()
        reopened = FileBackend(path)  # alias
        assert reopened.get("ns", b"key") == b"value"
        reopened.close()


class TestSharding:
    def test_keys_spread_over_shards(self):
        be = ShardedBackend(shard_count=4)
        for i in range(200):
            be.put("ns", i.to_bytes(8, "big"), b"v")
        per_shard = [shard.count("ns") for shard in be.shards]
        assert sum(per_shard) == 200
        assert all(n > 0 for n in per_shard)  # CRC-32 spreads ints fine

    def test_routing_is_stable(self):
        be = ShardedBackend(shard_count=4)
        assert be.shard_for(b"some-key") is be.shard_for(b"some-key")

    def test_empty_shard_list_rejected(self):
        with pytest.raises(ValueError):
            ShardedBackend([])


class TestPrefixing:
    def test_two_prefixes_share_one_store(self):
        inner = InMemoryBackend()
        a = PrefixedBackend(inner, "a/")
        b = PrefixedBackend(inner, "b/")
        a.put("ns", b"k", b"from-a")
        b.put("ns", b"k", b"from-b")
        assert a.get("ns", b"k") == b"from-a"
        assert b.get("ns", b"k") == b"from-b"
        assert set(inner.namespaces()) == {"a/ns", "b/ns"}
        assert a.namespaces() == ["ns"]


class TestNamespaceMap:
    def test_mutable_mapping_contract(self):
        view = NamespaceMap(InMemoryBackend(), "ops")
        assert view == {} and len(view) == 0
        view[7] = b"seven"
        view[1 << 40] = b"big"
        assert view[7] == b"seven" and view.get(2) is None
        assert sorted(view) == [7, 1 << 40]
        assert view == {7: b"seven", 1 << 40: b"big"}
        del view[7]
        with pytest.raises(KeyError):
            view[7]
        with pytest.raises(KeyError):
            del view[7]
