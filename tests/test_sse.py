"""Unit and property tests for the SSE substrate (PiBas, PiPack)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.prf import generate_key
from repro.errors import TokenError
from repro.sse.base import (
    CallbackKeyDeriver,
    EncryptedIndex,
    KeywordToken,
    PrfKeyDeriver,
    token_from_secret,
)
from repro.sse.encoding import encode_id
from repro.sse.pibas import PiBas
from repro.sse.pipack import PiPack

KEY = generate_key(random.Random(1))


def make_pibas(seed=0):
    return PiBas(PrfKeyDeriver(KEY), shuffle_rng=random.Random(seed))


def make_pipack(seed=0, block_size=4):
    return PiPack(PrfKeyDeriver(KEY), block_size=block_size, shuffle_rng=random.Random(seed))


MULTIMAP = {
    b"alpha": [encode_id(i) for i in range(10)],
    b"beta": [encode_id(100)],
    b"gamma": [encode_id(i) for i in range(200, 230)],
}


@pytest.fixture(params=["pibas", "pipack"])
def sse(request):
    return make_pibas() if request.param == "pibas" else make_pipack()


class TestSearchCorrectness:
    def test_exact_retrieval(self, sse):
        index = sse.build_index(MULTIMAP)
        for keyword, payloads in MULTIMAP.items():
            token = sse.trapdoor(keyword)
            assert sorted(sse.search(index, token)) == sorted(payloads)

    def test_absent_keyword_empty(self, sse):
        index = sse.build_index(MULTIMAP)
        assert sse.search(index, sse.trapdoor(b"nope")) == []

    def test_empty_multimap(self, sse):
        index = sse.build_index({})
        assert len(index) == 0
        assert sse.search(index, sse.trapdoor(b"alpha")) == []

    def test_empty_posting_list(self, sse):
        index = sse.build_index({b"w": []})
        assert sse.search(index, sse.trapdoor(b"w")) == []

    @given(st.dictionaries(st.binary(min_size=1, max_size=8),
                           st.lists(st.integers(0, 1 << 32), max_size=20),
                           max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_random_multimaps(self, raw):
        multimap = {kw: [encode_id(i) for i in ids] for kw, ids in raw.items()}
        for sse in (make_pibas(), make_pipack()):
            index = sse.build_index(multimap)
            for kw, payloads in multimap.items():
                assert sorted(sse.search(index, sse.trapdoor(kw))) == sorted(payloads)


class TestSecurityShape:
    def test_postings_shuffled(self):
        """EDB entry order must not reflect insertion order."""
        payloads = [encode_id(i) for i in range(50)]
        a = make_pibas(seed=1).search(
            make_pibas(seed=1).build_index({b"w": payloads}),
            make_pibas(seed=1).trapdoor(b"w"),
        )
        b = make_pibas(seed=2).search(
            make_pibas(seed=2).build_index({b"w": payloads}),
            make_pibas(seed=2).trapdoor(b"w"),
        )
        assert sorted(a) == sorted(b)
        assert a != b  # different permutations with overwhelming probability

    def test_foreign_token_finds_nothing(self, sse):
        index = sse.build_index(MULTIMAP)
        foreign = PrfKeyDeriver(generate_key(random.Random(9))).derive(b"alpha")
        assert sse.search(index, foreign) == []

    def test_labels_look_unrelated_to_keywords(self, sse):
        index = sse.build_index({b"aaaa": [encode_id(1)], b"aaab": [encode_id(2)]})
        labels = list(index.to_bytes())
        assert b"aaaa" not in bytes(labels)

    def test_token_sizes_fixed(self):
        token = PrfKeyDeriver(KEY).derive(b"w")
        assert token.serialized_size() == 32


class TestTokenDerivation:
    def test_token_from_secret_deterministic(self):
        assert token_from_secret(b"s" * 32) == token_from_secret(b"s" * 32)

    def test_callback_deriver_matches_direct(self):
        secret_fn = lambda kw: bytes(32)  # noqa: E731
        deriver = CallbackKeyDeriver(secret_fn)
        assert deriver.derive(b"anything") == token_from_secret(bytes(32))

    def test_keyword_token_validates_lengths(self):
        with pytest.raises(TokenError):
            KeywordToken(b"short", b"x" * 16)


class TestEncryptedIndex:
    def test_serialization_round_trip(self, sse):
        index = sse.build_index(MULTIMAP)
        clone = EncryptedIndex.from_bytes(index.to_bytes())
        token = sse.trapdoor(b"gamma")
        assert sorted(sse.search(clone, token)) == sorted(MULTIMAP[b"gamma"])

    def test_serialized_size_counts_all_bytes(self):
        index = EncryptedIndex({b"k" * 16: b"v" * 10, b"j" * 16: b"w" * 4})
        assert index.serialized_size() == 16 + 10 + 16 + 4

    def test_duplicate_label_rejected(self):
        index = EncryptedIndex()
        index.put(b"l" * 16, b"x")
        with pytest.raises(TokenError):
            index.put(b"l" * 16, b"y")

    def test_tamper_breaks_search(self):
        sse = make_pibas()
        index = sse.build_index({b"w": [encode_id(7)]})
        index.tamper()
        token = sse.trapdoor(b"w")
        try:
            out = sse.search(index, token)
            assert out != [encode_id(7)]
        except TokenError:
            pass  # detected corruption is also acceptable


class TestPiPackSpecifics:
    def test_block_size_bounds(self):
        with pytest.raises(ValueError):
            PiPack(PrfKeyDeriver(KEY), block_size=0)
        with pytest.raises(ValueError):
            PiPack(PrfKeyDeriver(KEY), block_size=256)

    def test_mixed_payload_lengths_rejected(self):
        sse = make_pipack()
        with pytest.raises(TokenError):
            sse.build_index({b"w": [b"aa", b"bbb"]})

    def test_packing_reduces_entries(self):
        payloads = [encode_id(i) for i in range(64)]
        packed = make_pipack(block_size=8).build_index({b"w": payloads})
        flat = make_pibas().build_index({b"w": payloads})
        assert len(packed) == 8 and len(flat) == 64

    def test_packing_reduces_bytes(self):
        payloads = [encode_id(i) for i in range(64)]
        packed = make_pipack(block_size=8).build_index({b"w": payloads})
        flat = make_pibas().build_index({b"w": payloads})
        assert packed.serialized_size() < flat.serialized_size()

    @pytest.mark.parametrize("count", [1, 7, 8, 9, 63, 64, 65])
    def test_partial_final_block(self, count):
        sse = make_pipack(block_size=8)
        payloads = [encode_id(i) for i in range(count)]
        index = sse.build_index({b"w": payloads})
        assert sorted(sse.search(index, sse.trapdoor(b"w"))) == sorted(payloads)
