"""Tests for leakage profiles and the leakage-only adversaries.

These tests mechanize Table 1's security ranking: the information an
adversary extracts must strictly shrink going Constant → Logarithmic →
SRC, and each leakage function must expose exactly what the paper's L2
definitions say — no more, no less.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.dprf import COVER_BRC, COVER_URC
from repro.leakage import (
    constant_leakage,
    distinct_value_disclosure,
    group_order_reconstruction,
    logarithmic_leakage,
    order_reconstruction,
    ordered_pair_accuracy,
    partition_entropy,
    src_i_leakage,
    src_leakage,
)

DOMAIN = 256


@pytest.fixture
def records(rng):
    return [(i, rng.randrange(DOMAIN)) for i in range(150)]


QUERIES = [(10, 90), (100, 200), (5, 250), (30, 60)]


class TestConstantLeakage:
    def test_discloses_offsets(self, records):
        _, trace = constant_leakage(records, DOMAIN, QUERIES)
        assert any(node.id_offsets for q in trace for node in q.nodes)

    def test_order_reconstruction_sound(self, records):
        _, trace = constant_leakage(records, DOMAIN, QUERIES)
        pairs = order_reconstruction(trace)
        assert pairs
        assert ordered_pair_accuracy(pairs, records) == 1.0

    def test_levels_disclosed(self, records):
        _, trace = constant_leakage(records, DOMAIN, QUERIES)
        assert all(node.level is not None for q in trace for node in q.nodes)

    def test_urc_cover_also_supported(self, records):
        _, trace = constant_leakage(records, DOMAIN, QUERIES, cover=COVER_URC)
        assert order_reconstruction(trace)

    def test_l1_is_n_and_m(self, records):
        profile, _ = constant_leakage(records, DOMAIN, QUERIES)
        assert profile.n == len(records) and profile.m == DOMAIN
        assert profile.distinct_values is None


class TestLogarithmicLeakage:
    def test_no_offsets_disclosed(self, records):
        _, trace = logarithmic_leakage(records, DOMAIN, QUERIES)
        assert all(node.id_offsets is None for q in trace for node in q.nodes)
        assert order_reconstruction(trace) == set()

    def test_partitioning_disclosed(self, records):
        _, trace = logarithmic_leakage(records, DOMAIN, QUERIES)
        multi_group = [q for q in trace if len([n for n in q.nodes if n.ids]) > 1]
        assert multi_group, "BRC covers should split results into groups"
        assert partition_entropy(trace) > 0

    def test_group_union_is_access_pattern(self, records):
        _, trace = logarithmic_leakage(records, DOMAIN, QUERIES)
        for q in trace:
            union = sorted(i for node in q.nodes for i in node.ids)
            assert union == sorted(q.access_pattern)


class TestSrcLeakage:
    def test_single_group_zero_entropy(self, records):
        _, trace = src_leakage(records, DOMAIN, QUERIES)
        assert all(len(q.nodes) == 1 for q in trace)
        assert partition_entropy(trace) == 0.0
        assert order_reconstruction(trace) == set()
        assert group_order_reconstruction(trace) == set()

    def test_access_pattern_includes_false_positives(self):
        # One tuple in range, heavy value just outside: the SRC node
        # leaks the flood — the paper's motivating example for SRC-i.
        records = [(0, 4)] + [(i + 1, 2) for i in range(50)]
        _, trace = src_leakage(records, 8, [(3, 5)])
        assert len(trace[0].access_pattern) == 51

    def test_search_pattern_collapses_same_cover(self, records):
        # Figure 3: [2,7] and [1,6] both SRC-cover to the root.
        _, trace = src_leakage(records, 8, [(2, 7), (1, 6)])
        assert trace[1].repeats_query == 0


class TestSrcILeakage:
    def test_l1_reveals_distinct_count(self, records):
        profile, _ = src_i_leakage(records, DOMAIN, QUERIES)
        assert profile.distinct_values == len({v for _, v in records})

    def test_round2_window_smaller_than_src_flood(self):
        records = [(0, 4)] + [(i + 1, 2) for i in range(50)]
        _, src_trace = src_leakage(records, 8, [(3, 5)])
        _, srci_trace = src_i_leakage(records, 8, [(3, 5)])
        assert len(srci_trace[0].access_pattern) < len(src_trace[0].access_pattern)

    def test_disclosure_counts_nonnegative(self, records):
        _, trace = src_i_leakage(records, DOMAIN, QUERIES)
        assert all(c >= 0 for c in distinct_value_disclosure(trace))


class TestSecurityRanking:
    def test_strictly_less_information_up_the_ranking(self, records):
        """Table 1's ordering, measured: exact-order pairs and partition
        entropy shrink monotonically Constant → Logarithmic → SRC."""
        _, tc = constant_leakage(records, DOMAIN, QUERIES)
        _, tl = logarithmic_leakage(records, DOMAIN, QUERIES)
        _, ts = src_leakage(records, DOMAIN, QUERIES)
        assert len(order_reconstruction(tc)) > 0
        assert len(order_reconstruction(tl)) == 0
        assert len(order_reconstruction(ts)) == 0
        assert partition_entropy(tl) > partition_entropy(ts) == 0.0

    def test_search_patterns_shared_by_all(self, records):
        for fn in (constant_leakage, logarithmic_leakage):
            _, trace = fn(records, DOMAIN, [(5, 9), (5, 9), (6, 9)])
            assert trace[0].repeats_query is None
            assert trace[1].repeats_query == 0
            assert trace[2].repeats_query is None
