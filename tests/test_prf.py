"""Unit tests for the PRF substrate."""

from __future__ import annotations

import random

import pytest

from repro.crypto import prf as prf_mod
from repro.crypto.prf import (
    KEY_LEN,
    PRF_OUT_LEN,
    derive_subkey,
    fingerprint,
    generate_key,
    prf,
    prf_truncated,
)
from repro.errors import KeyError_


class TestGenerateKey:
    def test_length(self):
        assert len(generate_key()) == KEY_LEN

    def test_distinct(self):
        assert generate_key() != generate_key()

    def test_injected_rng_is_deterministic(self):
        a = generate_key(random.Random(1))
        b = generate_key(random.Random(1))
        assert a == b

    def test_injected_rng_differs_from_csprng_path(self):
        assert generate_key(random.Random(1)) != generate_key()


class TestPrf:
    def test_output_length(self):
        key = generate_key(random.Random(2))
        assert len(prf(key, b"hello")) == PRF_OUT_LEN

    def test_deterministic(self):
        key = generate_key(random.Random(2))
        assert prf(key, b"x") == prf(key, b"x")

    def test_message_sensitivity(self):
        key = generate_key(random.Random(2))
        assert prf(key, b"x") != prf(key, b"y")

    def test_key_sensitivity(self):
        assert prf(generate_key(random.Random(1)), b"x") != prf(
            generate_key(random.Random(2)), b"x"
        )

    def test_empty_message_ok(self):
        key = generate_key(random.Random(2))
        assert len(prf(key, b"")) == PRF_OUT_LEN

    @pytest.mark.parametrize("bad", [b"", b"short", b"x" * 33, b"x" * 64])
    def test_rejects_bad_key_length(self, bad):
        with pytest.raises(KeyError_):
            prf(bad, b"m")

    def test_rejects_non_bytes_key(self):
        with pytest.raises(KeyError_):
            prf("k" * 32, b"m")  # type: ignore[arg-type]

    def test_accepts_bytearray_key(self):
        key = bytearray(generate_key(random.Random(3)))
        assert prf(key, b"m") == prf(bytes(key), b"m")


class TestTruncation:
    def test_is_prefix(self):
        key = generate_key(random.Random(4))
        assert prf_truncated(key, b"m", 16) == prf(key, b"m")[:16]

    @pytest.mark.parametrize("n", [0, -1, PRF_OUT_LEN + 1])
    def test_rejects_bad_lengths(self, n):
        key = generate_key(random.Random(4))
        with pytest.raises(ValueError):
            prf_truncated(key, b"m", n)


class TestSubkeys:
    def test_length(self):
        key = generate_key(random.Random(5))
        assert len(derive_subkey(key, b"a")) == KEY_LEN

    def test_purpose_separation(self):
        key = generate_key(random.Random(5))
        assert derive_subkey(key, b"a") != derive_subkey(key, b"b")

    def test_differs_from_master(self):
        key = generate_key(random.Random(5))
        assert derive_subkey(key, b"a") != key

    def test_usable_as_prf_key(self):
        key = generate_key(random.Random(5))
        sub = derive_subkey(key, b"child")
        assert len(prf(sub, b"m")) == PRF_OUT_LEN


class TestFingerprint:
    def test_sha1_length(self):
        assert len(fingerprint(b"data")) == 20

    def test_deterministic_and_keyless(self):
        assert fingerprint(b"data") == fingerprint(b"data")
