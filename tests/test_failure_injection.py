"""Failure injection: corrupted state, hostile inputs, misuse.

A production library must fail loudly and precisely.  Every test here
drives a component outside its contract and pins the failure mode.
"""

from __future__ import annotations

import random

import pytest

from repro.core.constant import ConstantBrc
from repro.core.logarithmic import LogarithmicBrc
from repro.core.log_src_i import LogarithmicSrcI
from repro.core.scheme import RangeScheme
from repro.crypto.dprf import DelegationToken, GgmDprf
from repro.crypto.prf import generate_key
from repro.errors import (
    DomainError,
    IndexStateError,
    IntegrityError,
    ReproError,
    TokenError,
)
from repro.sse.base import EncryptedIndex, KeywordToken, PrfKeyDeriver
from repro.sse.encoding import encode_id
from repro.sse.pibas import PiBas


def records(n=50, domain=512, seed=1):
    rng = random.Random(seed)
    return [(i, rng.randrange(domain)) for i in range(n)]


class TestHierarchy:
    def test_all_library_errors_catchable_at_base(self):
        for exc in (DomainError, IndexStateError, IntegrityError, TokenError):
            assert issubclass(exc, ReproError)

    def test_domain_error_is_value_error(self):
        assert issubclass(DomainError, ValueError)


class TestTamperedServerState:
    def test_tampered_edb_entry_detected_or_garbled(self):
        sse = PiBas(PrfKeyDeriver(generate_key(random.Random(1))))
        index = sse.build_index({b"w": [encode_id(1), encode_id(2)]})
        index.tamper()
        token = sse.trapdoor(b"w")
        try:
            out = sse.search(index, token)
            assert sorted(out) != [encode_id(1), encode_id(2)]
        except TokenError:
            pass

    def test_record_store_tampering_detected(self):
        scheme = LogarithmicBrc(512, rng=random.Random(2))
        scheme.build_index(records())
        some_id = next(iter(scheme._encrypted_store))
        blob = bytearray(scheme._encrypted_store[some_id])
        blob[-1] ^= 0xFF
        scheme._encrypted_store[some_id] = bytes(blob)
        with pytest.raises(IntegrityError):
            scheme.query(0, 511)

    def test_server_returning_unknown_id_detected(self):
        scheme = LogarithmicBrc(512, rng=random.Random(2))
        scheme.build_index(records())
        with pytest.raises(IndexStateError):
            scheme.resolve([999_999])


class TestHostileTokens:
    def test_truncated_keyword_token(self):
        with pytest.raises(TokenError):
            KeywordToken(b"\x00" * 15, b"\x00" * 16)

    def test_truncated_dprf_token(self):
        with pytest.raises(TokenError):
            DelegationToken(b"\x00" * 31, 2)

    def test_oversized_dprf_level_returns_no_results(self):
        """A forged token with an absurd level expands to garbage leaves,
        which cannot match any EDB label (but must not crash)."""
        scheme = ConstantBrc(64, rng=random.Random(3), intersection_policy="allow")
        scheme.build_index(records(20, 64))
        forged = DelegationToken(bytes(32), 3)
        from repro.core.constant import DprfRangeToken

        assert scheme.search(DprfRangeToken([forged])) == []


class TestLifecycleMisuse:
    def test_double_build_replaces_index(self):
        scheme = LogarithmicBrc(512, rng=random.Random(4))
        scheme.build_index(records(seed=1))
        first = scheme.query(0, 511).ids
        scheme.build_index(records(seed=2))
        second = scheme.query(0, 511).ids
        assert first == second == frozenset(range(50))

    def test_index_size_before_build(self):
        scheme = LogarithmicBrc(512)
        with pytest.raises(IndexStateError):
            scheme.index_size_bytes()

    def test_src_i_phase2_before_build(self):
        scheme = LogarithmicSrcI(512)
        with pytest.raises(IndexStateError):
            scheme.trapdoor_phase2(0, 1)

    def test_abstract_base_not_instantiable(self):
        with pytest.raises(TypeError):
            RangeScheme(16)  # type: ignore[abstract]


class TestHostileInputs:
    @pytest.mark.parametrize("bad_domain", [0, -5])
    def test_bad_domain_sizes(self, bad_domain):
        with pytest.raises(DomainError):
            LogarithmicBrc(bad_domain)

    def test_non_integer_values_rejected(self):
        scheme = LogarithmicBrc(512, rng=random.Random(5))
        with pytest.raises(DomainError):
            scheme.build_index([(1, "not-an-int")])  # type: ignore[list-item]

    def test_boolean_value_rejected(self):
        # bool is an int subclass; the domain check must still refuse it,
        # otherwise True silently indexes as 1.
        scheme = LogarithmicBrc(512, rng=random.Random(5))
        with pytest.raises(DomainError):
            scheme.build_index([(1, True)])

    def test_huge_id_round_trips(self):
        scheme = LogarithmicBrc(512, rng=random.Random(5))
        big = (1 << 64) - 1
        scheme.build_index([(big, 44)])
        assert scheme.query(44, 44).ids == {big}

    def test_id_overflow_rejected(self):
        scheme = LogarithmicBrc(512, rng=random.Random(5))
        with pytest.raises(DomainError):
            scheme.build_index([(1 << 64, 44)])

    def test_negative_id_rejected(self):
        scheme = LogarithmicBrc(512, rng=random.Random(5))
        with pytest.raises(DomainError):
            scheme.build_index([(-1, 44)])

    def test_boolean_id_rejected(self):
        scheme = LogarithmicBrc(512, rng=random.Random(5))
        with pytest.raises(DomainError):
            scheme.build_index([(True, 44)])


class TestMinimalDomains:
    def test_domain_of_one(self):
        scheme = LogarithmicBrc(1, rng=random.Random(6))
        scheme.build_index([(0, 0), (1, 0)])
        assert scheme.query(0, 0).ids == {0, 1}

    def test_domain_of_two(self):
        for name_cls in (LogarithmicBrc, LogarithmicSrcI):
            scheme = name_cls(2, rng=random.Random(6))
            scheme.build_index([(0, 0), (1, 1)])
            assert scheme.query(0, 0).ids == {0}
            assert scheme.query(1, 1).ids == {1}
            assert scheme.query(0, 1).ids == {0, 1}

    def test_constant_on_domain_of_two(self):
        scheme = ConstantBrc(2, rng=random.Random(6), intersection_policy="allow")
        scheme.build_index([(0, 0), (1, 1)])
        assert scheme.query(0, 1).ids == {0, 1}


class TestEncryptedIndexEdgeCases:
    def test_from_bytes_empty(self):
        index = EncryptedIndex.from_bytes(EncryptedIndex().to_bytes())
        assert len(index) == 0

    def test_contains(self):
        index = EncryptedIndex({b"l" * 16: b"v"})
        assert b"l" * 16 in index and b"m" * 16 not in index

    def test_tamper_on_empty_is_noop(self):
        EncryptedIndex().tamper()  # must not raise
