"""Cross-layer observability integration tests (PR 8 + PR 10).

Spins real in-thread shard servers and asserts the telemetry promises
end to end: one trace id in every shard's span buffer after a
scatter-gather query, tail percentiles on every op in the stats frame,
metrics deltas over the wire (including cursor resets across restarts),
the live cluster monitor over managed stores, overflow-proof table
rendering, the headless alerts/slow CLIs, and the thread-safe harness
stopwatch.
"""

from __future__ import annotations

import json
import random
import threading
import time

import pytest

from repro.cluster import ClusterRouter, make_shard_map
from repro.core.registry import make_scheme
from repro.harness.metrics import Stopwatch
from repro.net import NetTransport, serve_in_thread
from repro.net.server import ServerStats
from repro.obs import (
    ClusterMonitor,
    MetricsRegistry,
    new_trace_id,
    render_top,
)

DOMAIN = 512


def _records(seed: int, n: int = 120):
    rng = random.Random(seed)
    return [(i, rng.randrange(DOMAIN)) for i in range(n)]


def _schemes(count: int, seed: int, name: str = "logarithmic-brc"):
    return [
        make_scheme(name, DOMAIN, rng=random.Random(seed + i))
        for i in range(count)
    ]


@pytest.fixture
def two_shards():
    servers = [serve_in_thread(shard=f"{i}/2") for i in range(2)]
    shard_map = make_shard_map([(s.host, s.port) for s in servers])
    router = ClusterRouter(_schemes(2, seed=11), shard_map)
    router.outsource(_records(seed=5))
    try:
        yield servers, router
    finally:
        router.close()
        for server in servers:
            server.stop()


class TestTracePropagation:
    def test_one_trace_id_lands_in_every_shard(self, two_shards):
        servers, router = two_shards
        tid = new_trace_id()
        router.query_many([(10, 200), (0, DOMAIN - 1)], trace_id=tid)
        # Client side: the scatter root span, with one per-shard child
        # (pool submissions run under a copied context, so spans opened
        # on worker threads attach to the caller's trace).
        assert tid in router.tracer.trace_ids()
        (client_trace,) = router.tracer.find(tid)
        names = [s["name"] for s in client_trace["spans"]]
        assert names.count("router.scatter") == 1
        assert names.count("router.shard") == len(servers)
        assert set(names) == {"router.scatter", "router.shard"}
        # Server side: every shard buffered the same id, with the full
        # span stack under its server.handle root.
        for server in servers:
            tracer = server.server.core.tracer
            assert tid in tracer.trace_ids()
            (trace,) = tracer.find(tid)
            names = {s["name"] for s in trace["spans"]}
            assert {"server.handle", "engine.wave", "kernel.batch",
                    "storage.get_many"} <= names
            root = trace["spans"][-1]
            assert root["name"] == "server.handle"
            assert root["depth"] == 0

    def test_untraced_queries_leave_no_trace(self, two_shards):
        servers, router = two_shards
        router.query_many([(10, 200)])
        assert len(router.tracer) == 0
        for server in servers:
            assert len(server.server.core.tracer) == 0

    def test_distinct_queries_get_distinct_traces(self, two_shards):
        servers, router = two_shards
        ids = [new_trace_id() for _ in range(3)]
        for tid in ids:
            router.query_many([(0, 99)], trace_id=tid)
        for server in servers:
            assert set(ids) <= server.server.core.tracer.trace_ids()

    def test_traces_ride_the_metrics_frame(self, two_shards):
        servers, router = two_shards
        tid = new_trace_id()
        router.query_many([(10, 400)], trace_id=tid)
        server = servers[0]
        with NetTransport(server.host, server.port) as transport:
            payload = transport.metrics(max_traces=16)
        assert tid in {t["trace_id"] for t in payload["traces"]}
        # Without max_traces the frame stays trace-free (small polls).
        with NetTransport(server.host, server.port) as transport:
            assert transport.metrics()["traces"] == []


class TestStatsSurface:
    def test_ops_report_tail_percentiles(self, two_shards):
        servers, router = two_shards
        for _ in range(4):
            router.query_many([(0, 100), (200, 300)])
        for server in servers:
            with NetTransport(server.host, server.port) as transport:
                stats = transport.stats()
            assert stats.get("v") == 1
            ops = stats["net"]["ops"]
            assert ops, "expected at least one recorded op"
            for name, entry in ops.items():
                # Historical keys stay; percentiles ride alongside.
                assert entry["count"] >= 1, name
                for key in ("total_seconds", "mean_seconds", "p50_seconds",
                            "p95_seconds", "p99_seconds"):
                    assert key in entry, (name, key)
                assert entry["p50_seconds"] <= entry["p99_seconds"] * 1.0001
            # The unified registry view rides the same stats frame.
            assert stats["metrics"]["v"] == 1
            assert any(
                k.startswith("op.") for k in stats["metrics"]["histograms"]
            )

    def test_stats_frame_tolerates_unknown_keys(self, two_shards):
        servers, _ = two_shards
        server = servers[0]
        with NetTransport(server.host, server.port) as transport:
            stats = transport.stats()
        # Forward-compat contract: the client returns whatever dict the
        # server sent — unknown keys (like a future "v2_section") pass
        # through instead of being schema-validated away.
        assert isinstance(stats, dict)
        assert {"server", "net", "metrics", "v"} <= set(stats)

    def test_legacy_op_seconds_shape_is_preserved(self):
        stats = ServerStats()
        stats.record_op("multi-search", 0.01)
        stats.record_op("multi-search", 0.03)
        # The in-memory [count, sum] lists that pre-PR8 consumers read.
        assert stats.op_seconds["multi-search"][0] == 2
        assert abs(stats.op_seconds["multi-search"][1] - 0.04) < 1e-9
        entry = stats.to_dict()["ops"]["multi-search"]
        assert entry["count"] == 2
        assert entry["p50_seconds"] > 0.0

    def test_disabled_registry_degrades_to_zero_percentiles(self):
        stats = ServerStats(registry=MetricsRegistry(enabled=False))
        stats.record_op("search", 0.02)
        entry = stats.to_dict()["ops"]["search"]
        assert entry["count"] == 1  # the legacy tally still works
        assert entry["p99_seconds"] == 0.0  # instruments are no-ops


class TestMetricsDelta:
    def test_delta_over_the_wire(self, two_shards):
        servers, router = two_shards
        router.query_many([(0, 100)])
        server = servers[0]
        with NetTransport(server.host, server.port) as transport:
            full = transport.metrics()
            assert "op.multi-search" in full["histograms"]
            cursor = full["seq"]
            # The metrics op itself records its own latency after each
            # reply, so op.metrics legitimately reappears — but the
            # query op must NOT: nothing searched since the cursor.
            quiet = transport.metrics(since=cursor)
            assert "op.multi-search" not in quiet["histograms"]
            assert quiet["since"] == cursor
            router.query_many([(0, 100)])
            moved = transport.metrics(since=cursor)
            assert "op.multi-search" in moved["histograms"]

    def test_per_shard_registries_are_distinct(self, two_shards):
        servers, _ = two_shards
        registries = [s.server.stats.registry for s in servers]
        assert registries[0] is not registries[1]

    def test_cursor_reset_across_restart(self, two_shards):
        """A poller resuming its delta cursor against a *restarted*
        shard must get a full snapshot, not silence: the boot id it
        pinned no longer matches, so the server resets the cursor.

        Registry sequence numbers are process-global, so a genuinely
        restarted process can hand out cursors that alias the old
        ones — the boot id is what makes the difference detectable.
        Here the 'restart' is a second registry (fresh boot id) and a
        deliberately future cursor standing in for a stale one.
        """
        servers, router = two_shards
        router.query_many([(0, 100)])
        server = servers[0]
        with NetTransport(server.host, server.port) as transport:
            full = transport.metrics()
            boot = full["boot"]
            assert boot and len(boot) == 16
            # Matching boot: the cursor is honored — a future cursor
            # sees nothing new and no reset marker.
            quiet = transport.metrics(since=10**9, boot=boot)
            assert "cursor_reset" not in quiet
            assert "op.multi-search" not in quiet["histograms"]
            # Mismatched boot (the shard "restarted"): same cursor now
            # triggers a reset and the full current state comes back.
            # (All-zero is the wire's "unset" sentinel, so it can't
            # serve as a stale id.)
            stale = "f" * 16 if boot != "f" * 16 else "e" * 16
            reset = transport.metrics(since=10**9, boot=stale)
            assert reset["cursor_reset"] is True
            assert reset["boot"] == boot
            assert "op.multi-search" in reset["histograms"]

    def test_cursor_survives_real_restart_generations(self):
        """Same contract with two actual server generations: a poller
        that pinned generation 1's boot id sees the reset marker on
        its first poll of generation 2."""
        first = serve_in_thread(shard="gen/1")
        try:
            with NetTransport(first.host, first.port) as transport:
                boot1 = transport.metrics()["boot"]
                seq1 = transport.metrics()["seq"]
        finally:
            first.stop()
        second = serve_in_thread(shard="gen/2")
        try:
            with NetTransport(second.host, second.port) as transport:
                payload = transport.metrics(since=seq1, boot=boot1)
            assert payload["boot"] != boot1
            assert payload["cursor_reset"] is True
        finally:
            second.stop()


class TestClusterMonitor:
    def test_sample_covers_every_shard(self, two_shards):
        servers, router = two_shards
        router.query_many([(0, 200)])
        addrs = [(s.host, s.port) for s in servers]
        with ClusterMonitor(addrs) as monitor:
            first = monitor.sample()
            assert first["v"] == 1
            assert first["shard_count"] == 2
            assert first["reachable"] == 2
            shards = {row["shard"] for row in first["shards"]}
            assert shards == {"0/2", "1/2"}
            for row in first["shards"]:
                assert row["reachable"] is True
                assert row["schema_v"] == 1
                assert row["ops_total"] >= 1
                assert row["p99_ms"] >= 0.0
                assert row["inflight"] >= 0
            # Rates are derived between consecutive samples.
            router.query_many([(0, 200), (10, 30)])
            second = monitor.sample()
            assert all(row["qps"] >= 0.0 for row in second["shards"])
            json.dumps(second)  # --json mode serves this verbatim

    def test_down_shard_is_a_row_not_a_crash(self, two_shards):
        servers, _ = two_shards
        addrs = [(s.host, s.port) for s in servers]
        with ClusterMonitor(addrs) as monitor:
            servers[1].stop()
            sample = monitor.sample()
            assert sample["reachable"] == 1
            down = [r for r in sample["shards"] if not r["reachable"]]
            assert len(down) == 1 and down[0]["error"]
            rendered = render_top(sample)
            assert "DOWN" in rendered

    def test_render_top_table_shape(self, two_shards):
        servers, router = two_shards
        router.query_many([(5, 50)])
        addrs = [(s.host, s.port) for s in servers]
        with ClusterMonitor(addrs) as monitor:
            rendered = render_top(monitor.sample())
        lines = rendered.splitlines()
        assert "qps" in lines[0] and "p99ms" in lines[0]
        assert len(lines) == 4  # header + 2 shard rows + footer
        assert lines[-1] == "shards 2/2 reachable"

    def test_monitor_accepts_string_addrs(self, two_shards):
        servers, _ = two_shards
        addrs = [f"{s.host}:{s.port}" for s in servers]
        with ClusterMonitor(addrs) as monitor:
            assert monitor.sample()["reachable"] == 2

    def test_monitor_rejects_empty_and_garbage_addrs(self):
        with pytest.raises(ValueError):
            ClusterMonitor([])
        with pytest.raises(ValueError):
            ClusterMonitor(["no-port-here"])

    def test_managed_store_updates_ride_the_monitor(self):
        """The PR-9 ``updates.*`` counter family surfaces per shard in
        monitor samples (and therefore in ``top --once --json``)."""
        from repro.net.store import NetRangeStore

        servers = [serve_in_thread(shard=f"{i}/2") for i in range(2)]
        try:
            for n, server in enumerate(servers):
                with NetRangeStore.connect(
                    server.host,
                    server.port,
                    domain_size=DOMAIN,
                    schemes=("logarithmic-brc",),
                    index_id=41,
                    consolidation_step=2,
                ) as store:
                    store.insert_many((i, i % DOMAIN) for i in range(6 + n))
                    store.flush()
            addrs = [(s.host, s.port) for s in servers]
            with ClusterMonitor(addrs) as monitor:
                sample = monitor.sample()
            assert sample["reachable"] == 2
            for n, row in enumerate(sample["shards"]):
                assert row["updates"]["applied"] == 6 + n
                assert row["updates"]["batches"] >= 1
                # The raw registry stays off the row unless asked for.
                assert "metrics" not in row
            with ClusterMonitor(addrs, collect_metrics=True) as monitor:
                sample = monitor.sample()
            for row in sample["shards"]:
                assert "updates.applied" in row["metrics"]["counters"]
        finally:
            for server in servers:
                server.stop()


class TestRenderOverflow:
    """Hostile values must truncate inside their columns, not shear
    the table (the pre-PR10 f-strings let any cell overflow)."""

    @staticmethod
    def _row(**overrides):
        row = {
            "address": "10.0.0.1:9999",
            "reachable": True,
            "shard": "0/2",
            "qps": 12.5,
            "p50_ms": 1.0,
            "p99_ms": 2.0,
            "inflight": 0,
            "cache_hit_rate": 0.5,
            "kernel": "serial",
            "errors": 0,
        }
        row.update(overrides)
        return row

    def test_render_top_survives_hostile_values(self):
        sample = {
            "shard_count": 2,
            "reachable": 2,
            "shards": [
                self._row(),
                self._row(
                    address="very-long-hostname.internal.example.com:65001",
                    shard="9999999/9999999",
                    qps=123456789012.0,
                    kernel="a-very-long-kernel-backend-name",
                    errors=10**15,
                ),
            ],
        }
        rendered = render_top(sample)
        lines = rendered.splitlines()
        up_rows = [l for l in lines if " UP " in l]
        assert len(up_rows) == 2
        assert len(up_rows[0]) == len(up_rows[1])  # aligned despite abuse
        assert "…" in up_rows[1]
        assert "123456789012" not in up_rows[1]  # compacted, not spilled

    def test_render_health_survives_hostile_values(self):
        from repro.cluster.health import render_health

        def entry(**overrides):
            base = {
                "shard": 0,
                "address": "10.0.0.1:9999",
                "reachable": True,
                "label": "",
                "stored_bytes": 1024,
                "frames_in": 10,
                "errors": 0,
                "inflight_by_index": {},
                "exec_cache": None,
                "crypto_kernel": {"backend": "serial"},
                "ops": {},
                "search_p99_ms": 1.5,
            }
            base.update(overrides)
            return base

        health = {
            "topology_version": 1,
            "shard_count": 2,
            "reachable": 2,
            "unreachable_shards": [],
            "totals": {"stored_bytes": 0, "frames_in": 0,
                       "serial_fallbacks": 0},
            "exec_cache_hit_rate": 0.0,
            "kernel_offload_ratio": 0.0,
            "shards": [
                entry(),
                entry(
                    shard=77777777,
                    address="very-long-hostname.internal.example.com:65001",
                    label="a-label-much-longer-than-the-column",
                    stored_bytes=10**14,
                    frames_in=10**12,
                    search_p99_ms=123456.789,
                    crypto_kernel={"backend": "a-long-backend", "workers": 9},
                ),
            ],
        }
        normal, hostile = render_health(health).splitlines()[3:5]
        assert len(normal) == len(hostile)  # aligned despite abuse
        assert "…" in hostile


class TestCliHeadless:
    def test_top_once_json(self, capsys):
        from repro.harness.cli import main

        code = main([
            "top", "--once", "--json", "--records", "80",
            "--domain", str(DOMAIN),
        ])
        assert code == 0
        sample = json.loads(capsys.readouterr().out)
        assert sample["shard_count"] == 2
        assert sample["reachable"] == 2
        # PR 10: the sample carries the SLO rollup, and the bulky raw
        # registry snapshots are stripped from the JSON surface.
        assert sample["alerts"]["worst"] in {"ok", "warn", "page"}
        assert {a["name"] for a in sample["alerts"]["alerts"]} == {
            "search-p99", "error-rate", "fleet",
        }
        assert all("metrics" not in row for row in sample["shards"])

    def test_alerts_once_pages_on_breached_objective(self, capsys):
        """An impossible latency bound turns into worst=page and exit
        code 1 — the headless CI/cron contract."""
        from repro.harness.cli import main

        code = main([
            "alerts", "--once", "--json", "--shards", "1",
            "--records", "80", "--domain", str(DOMAIN),
            "--samples", "2", "--interval", "0.1",
            "--objective", "ci-page: p99(op.multi-search) < 0.001ms over 1m",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["worst"] == "page"
        [alert] = doc["alerts"]
        assert alert["name"] == "ci-page"
        assert alert["state"] == "page"
        assert alert["worst_shard"]

    def test_alerts_once_healthy_objective_exits_zero(self, capsys):
        from repro.harness.cli import main

        code = main([
            "alerts", "--once", "--json", "--shards", "1",
            "--records", "80", "--domain", str(DOMAIN),
            "--samples", "2", "--interval", "0.1",
            "--objective", "ci-ok: p99(op.multi-search) < 60s over 1m",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["worst"] == "ok"

    def test_slow_demo_captures_over_the_wire(self, capsys):
        """The slow CLI's demo cluster runs sampled tracing with an
        armed recorder; captures ride back via the metrics frame."""
        from repro.harness.cli import main

        code = main([
            "slow", "--json", "--shards", "1", "--records", "80",
            "--domain", str(DOMAIN), "--queries", "4",
            "--threshold-ms", "0",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["v"] == 1
        assert doc["slow"]
        top = doc["slow"][0]
        assert top["op"] == "multi-search"
        assert any(
            span["name"] == "storage.get_many" for span in top["spans"]
        )
        assert top["trace_id"]

    def test_trace_chrome_export(self, tmp_path, capsys):
        from repro.harness.cli import main

        out = tmp_path / "trace.json"
        code = main([
            "trace", "--records", "80", "--domain", str(DOMAIN),
            "--queries", "2", "--out", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert {"router.scatter", "server.handle", "engine.wave"} <= names

    def test_trace_jsonl_to_stdout(self, capsys):
        from repro.harness.cli import main

        code = main([
            "trace", "--records", "80", "--domain", str(DOMAIN),
            "--queries", "1", "--format", "jsonl",
        ])
        assert code == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l]
        rows = [json.loads(line) for line in lines]
        assert any(r["name"] == "router.scatter" for r in rows)


class TestStopwatchThreadSafety:
    def test_concurrent_measures_never_lose_time(self):
        """Regression: ``seconds +=`` was an unlocked read-modify-write;
        racing measure() blocks could overwrite each other's updates.
        With the lock, the total is at least the sum of every block's
        sleep — a lost update would fall short of the bound."""
        sw = Stopwatch()
        threads_n, iters, nap = 4, 25, 0.002

        def worker():
            for _ in range(iters):
                with sw.measure():
                    time.sleep(nap)

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sw.seconds >= threads_n * iters * nap

    def test_single_threaded_accumulation_still_works(self):
        sw = Stopwatch()
        with sw.measure():
            pass
        with sw.measure():
            pass
        assert sw.seconds >= 0.0
        assert repr(sw)  # the lock field stays out of repr/compare
        assert "_lock" not in repr(sw)
