"""Cross-layer observability integration tests (PR 8).

Spins real in-thread shard servers and asserts the telemetry promises
end to end: one trace id in every shard's span buffer after a
scatter-gather query, tail percentiles on every op in the stats frame,
metrics deltas over the wire, the live cluster monitor, and the
thread-safe harness stopwatch.
"""

from __future__ import annotations

import json
import random
import threading
import time

import pytest

from repro.cluster import ClusterRouter, make_shard_map
from repro.core.registry import make_scheme
from repro.harness.metrics import Stopwatch
from repro.net import NetTransport, serve_in_thread
from repro.net.server import ServerStats
from repro.obs import (
    ClusterMonitor,
    MetricsRegistry,
    new_trace_id,
    render_top,
)

DOMAIN = 512


def _records(seed: int, n: int = 120):
    rng = random.Random(seed)
    return [(i, rng.randrange(DOMAIN)) for i in range(n)]


def _schemes(count: int, seed: int, name: str = "logarithmic-brc"):
    return [
        make_scheme(name, DOMAIN, rng=random.Random(seed + i))
        for i in range(count)
    ]


@pytest.fixture
def two_shards():
    servers = [serve_in_thread(shard=f"{i}/2") for i in range(2)]
    shard_map = make_shard_map([(s.host, s.port) for s in servers])
    router = ClusterRouter(_schemes(2, seed=11), shard_map)
    router.outsource(_records(seed=5))
    try:
        yield servers, router
    finally:
        router.close()
        for server in servers:
            server.stop()


class TestTracePropagation:
    def test_one_trace_id_lands_in_every_shard(self, two_shards):
        servers, router = two_shards
        tid = new_trace_id()
        router.query_many([(10, 200), (0, DOMAIN - 1)], trace_id=tid)
        # Client side: the scatter root span, with one per-shard child
        # (pool submissions run under a copied context, so spans opened
        # on worker threads attach to the caller's trace).
        assert tid in router.tracer.trace_ids()
        (client_trace,) = router.tracer.find(tid)
        names = [s["name"] for s in client_trace["spans"]]
        assert names.count("router.scatter") == 1
        assert names.count("router.shard") == len(servers)
        assert set(names) == {"router.scatter", "router.shard"}
        # Server side: every shard buffered the same id, with the full
        # span stack under its server.handle root.
        for server in servers:
            tracer = server.server.core.tracer
            assert tid in tracer.trace_ids()
            (trace,) = tracer.find(tid)
            names = {s["name"] for s in trace["spans"]}
            assert {"server.handle", "engine.wave", "kernel.batch",
                    "storage.get_many"} <= names
            root = trace["spans"][-1]
            assert root["name"] == "server.handle"
            assert root["depth"] == 0

    def test_untraced_queries_leave_no_trace(self, two_shards):
        servers, router = two_shards
        router.query_many([(10, 200)])
        assert len(router.tracer) == 0
        for server in servers:
            assert len(server.server.core.tracer) == 0

    def test_distinct_queries_get_distinct_traces(self, two_shards):
        servers, router = two_shards
        ids = [new_trace_id() for _ in range(3)]
        for tid in ids:
            router.query_many([(0, 99)], trace_id=tid)
        for server in servers:
            assert set(ids) <= server.server.core.tracer.trace_ids()

    def test_traces_ride_the_metrics_frame(self, two_shards):
        servers, router = two_shards
        tid = new_trace_id()
        router.query_many([(10, 400)], trace_id=tid)
        server = servers[0]
        with NetTransport(server.host, server.port) as transport:
            payload = transport.metrics(max_traces=16)
        assert tid in {t["trace_id"] for t in payload["traces"]}
        # Without max_traces the frame stays trace-free (small polls).
        with NetTransport(server.host, server.port) as transport:
            assert transport.metrics()["traces"] == []


class TestStatsSurface:
    def test_ops_report_tail_percentiles(self, two_shards):
        servers, router = two_shards
        for _ in range(4):
            router.query_many([(0, 100), (200, 300)])
        for server in servers:
            with NetTransport(server.host, server.port) as transport:
                stats = transport.stats()
            assert stats.get("v") == 1
            ops = stats["net"]["ops"]
            assert ops, "expected at least one recorded op"
            for name, entry in ops.items():
                # Historical keys stay; percentiles ride alongside.
                assert entry["count"] >= 1, name
                for key in ("total_seconds", "mean_seconds", "p50_seconds",
                            "p95_seconds", "p99_seconds"):
                    assert key in entry, (name, key)
                assert entry["p50_seconds"] <= entry["p99_seconds"] * 1.0001
            # The unified registry view rides the same stats frame.
            assert stats["metrics"]["v"] == 1
            assert any(
                k.startswith("op.") for k in stats["metrics"]["histograms"]
            )

    def test_stats_frame_tolerates_unknown_keys(self, two_shards):
        servers, _ = two_shards
        server = servers[0]
        with NetTransport(server.host, server.port) as transport:
            stats = transport.stats()
        # Forward-compat contract: the client returns whatever dict the
        # server sent — unknown keys (like a future "v2_section") pass
        # through instead of being schema-validated away.
        assert isinstance(stats, dict)
        assert {"server", "net", "metrics", "v"} <= set(stats)

    def test_legacy_op_seconds_shape_is_preserved(self):
        stats = ServerStats()
        stats.record_op("multi-search", 0.01)
        stats.record_op("multi-search", 0.03)
        # The in-memory [count, sum] lists that pre-PR8 consumers read.
        assert stats.op_seconds["multi-search"][0] == 2
        assert abs(stats.op_seconds["multi-search"][1] - 0.04) < 1e-9
        entry = stats.to_dict()["ops"]["multi-search"]
        assert entry["count"] == 2
        assert entry["p50_seconds"] > 0.0

    def test_disabled_registry_degrades_to_zero_percentiles(self):
        stats = ServerStats(registry=MetricsRegistry(enabled=False))
        stats.record_op("search", 0.02)
        entry = stats.to_dict()["ops"]["search"]
        assert entry["count"] == 1  # the legacy tally still works
        assert entry["p99_seconds"] == 0.0  # instruments are no-ops


class TestMetricsDelta:
    def test_delta_over_the_wire(self, two_shards):
        servers, router = two_shards
        router.query_many([(0, 100)])
        server = servers[0]
        with NetTransport(server.host, server.port) as transport:
            full = transport.metrics()
            assert "op.multi-search" in full["histograms"]
            cursor = full["seq"]
            # The metrics op itself records its own latency after each
            # reply, so op.metrics legitimately reappears — but the
            # query op must NOT: nothing searched since the cursor.
            quiet = transport.metrics(since=cursor)
            assert "op.multi-search" not in quiet["histograms"]
            assert quiet["since"] == cursor
            router.query_many([(0, 100)])
            moved = transport.metrics(since=cursor)
            assert "op.multi-search" in moved["histograms"]

    def test_per_shard_registries_are_distinct(self, two_shards):
        servers, _ = two_shards
        registries = [s.server.stats.registry for s in servers]
        assert registries[0] is not registries[1]


class TestClusterMonitor:
    def test_sample_covers_every_shard(self, two_shards):
        servers, router = two_shards
        router.query_many([(0, 200)])
        addrs = [(s.host, s.port) for s in servers]
        with ClusterMonitor(addrs) as monitor:
            first = monitor.sample()
            assert first["v"] == 1
            assert first["shard_count"] == 2
            assert first["reachable"] == 2
            shards = {row["shard"] for row in first["shards"]}
            assert shards == {"0/2", "1/2"}
            for row in first["shards"]:
                assert row["reachable"] is True
                assert row["schema_v"] == 1
                assert row["ops_total"] >= 1
                assert row["p99_ms"] >= 0.0
                assert row["inflight"] >= 0
            # Rates are derived between consecutive samples.
            router.query_many([(0, 200), (10, 30)])
            second = monitor.sample()
            assert all(row["qps"] >= 0.0 for row in second["shards"])
            json.dumps(second)  # --json mode serves this verbatim

    def test_down_shard_is_a_row_not_a_crash(self, two_shards):
        servers, _ = two_shards
        addrs = [(s.host, s.port) for s in servers]
        with ClusterMonitor(addrs) as monitor:
            servers[1].stop()
            sample = monitor.sample()
            assert sample["reachable"] == 1
            down = [r for r in sample["shards"] if not r["reachable"]]
            assert len(down) == 1 and down[0]["error"]
            rendered = render_top(sample)
            assert "DOWN" in rendered

    def test_render_top_table_shape(self, two_shards):
        servers, router = two_shards
        router.query_many([(5, 50)])
        addrs = [(s.host, s.port) for s in servers]
        with ClusterMonitor(addrs) as monitor:
            rendered = render_top(monitor.sample())
        lines = rendered.splitlines()
        assert "qps" in lines[0] and "p99ms" in lines[0]
        assert len(lines) == 4  # header + 2 shard rows + footer
        assert lines[-1] == "shards 2/2 reachable"

    def test_monitor_accepts_string_addrs(self, two_shards):
        servers, _ = two_shards
        addrs = [f"{s.host}:{s.port}" for s in servers]
        with ClusterMonitor(addrs) as monitor:
            assert monitor.sample()["reachable"] == 2

    def test_monitor_rejects_empty_and_garbage_addrs(self):
        with pytest.raises(ValueError):
            ClusterMonitor([])
        with pytest.raises(ValueError):
            ClusterMonitor(["no-port-here"])


class TestCliHeadless:
    def test_top_once_json(self, capsys):
        from repro.harness.cli import main

        code = main([
            "top", "--once", "--json", "--records", "80",
            "--domain", str(DOMAIN),
        ])
        assert code == 0
        sample = json.loads(capsys.readouterr().out)
        assert sample["shard_count"] == 2
        assert sample["reachable"] == 2

    def test_trace_chrome_export(self, tmp_path, capsys):
        from repro.harness.cli import main

        out = tmp_path / "trace.json"
        code = main([
            "trace", "--records", "80", "--domain", str(DOMAIN),
            "--queries", "2", "--out", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert {"router.scatter", "server.handle", "engine.wave"} <= names

    def test_trace_jsonl_to_stdout(self, capsys):
        from repro.harness.cli import main

        code = main([
            "trace", "--records", "80", "--domain", str(DOMAIN),
            "--queries", "1", "--format", "jsonl",
        ])
        assert code == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l]
        rows = [json.loads(line) for line in lines]
        assert any(r["name"] == "router.scatter" for r in rows)


class TestStopwatchThreadSafety:
    def test_concurrent_measures_never_lose_time(self):
        """Regression: ``seconds +=`` was an unlocked read-modify-write;
        racing measure() blocks could overwrite each other's updates.
        With the lock, the total is at least the sum of every block's
        sleep — a lost update would fall short of the bound."""
        sw = Stopwatch()
        threads_n, iters, nap = 4, 25, 0.002

        def worker():
            for _ in range(iters):
                with sw.measure():
                    time.sleep(nap)

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sw.seconds >= threads_n * iters * nap

    def test_single_threaded_accumulation_still_works(self):
        sw = Stopwatch()
        with sw.measure():
            pass
        with sw.measure():
            pass
        assert sw.seconds >= 0.0
        assert repr(sw)  # the lock field stays out of repr/compare
        assert "_lock" not in repr(sw)
