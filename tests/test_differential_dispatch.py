"""Differential correctness: every scheme vs the plaintext oracle.

Hypothesis drives random builds, update batches (inserts + deletes) and
range queries through :class:`~repro.rangestore.RangeStore` for **all
seven registry schemes** and through the dispatcher's chosen lane in
:class:`~repro.rangestore.HybridRangeStore`, on both the in-memory and
SQLite backends, asserting byte-for-byte agreement with a plaintext
model.  This is the suite that makes "adaptive dispatch" safe: whatever
lane the cost model picks, the answer must be *exactly* the oracle's.
"""

from __future__ import annotations

import os
import random
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.rangestore import HybridRangeStore, RangeStore
from repro.storage.backend import SqliteBackend

#: The paper's seven RSSE constructions (the full registry minus the
#: measured PB baseline).
ALL_SCHEMES = (
    "quadratic",
    "constant-brc",
    "constant-urc",
    "logarithmic-brc",
    "logarithmic-urc",
    "logarithmic-src",
    "logarithmic-src-i",
)

DOMAIN = 64

#: One bounded random "life" of a store: initial batch, one follow-up
#: batch of deletes + inserts, and a handful of queries.
lives = st.fixed_dictionaries(
    {
        "initial": st.dictionaries(
            st.integers(0, 199), st.integers(0, DOMAIN - 1), min_size=1, max_size=20
        ),
        "second": st.dictionaries(
            st.integers(200, 399), st.integers(0, DOMAIN - 1), max_size=8
        ),
        "delete_picks": st.lists(st.integers(0, 19), max_size=4),
        "queries": st.lists(
            st.tuples(st.integers(0, DOMAIN - 1), st.integers(0, DOMAIN - 1)),
            min_size=1,
            max_size=4,
        ),
    }
)


def _norm(q: "tuple[int, int]") -> "tuple[int, int]":
    lo, hi = q
    return (lo, hi) if lo <= hi else (hi, lo)


def _open_backend(kind: str, tmpdir: str):
    if kind == "sqlite":
        return SqliteBackend(os.path.join(tmpdir, "diff.sqlite"))
    return None


def _run_life(store, life) -> None:
    """Drive one random life, checking every query against the model."""
    model: "dict[int, int]" = {}
    for rid, value in life["initial"].items():
        store.insert(rid, value)
        model[rid] = value
    # First query flushes batch 1.
    lo, hi = _norm(life["queries"][0])
    expected = frozenset(r for r, v in model.items() if lo <= v <= hi)
    assert store.search(lo, hi).ids == expected

    # Batch 2: delete a few live tuples, insert fresh ones.
    initial_ids = sorted(life["initial"])
    for pick in life["delete_picks"]:
        rid = initial_ids[pick % len(initial_ids)]
        if rid in model:
            store.delete(rid, model.pop(rid))
    for rid, value in life["second"].items():
        store.insert(rid, value)
        model[rid] = value

    for query in life["queries"]:
        lo, hi = _norm(query)
        expected = frozenset(r for r, v in model.items() if lo <= v <= hi)
        outcome = store.search(lo, hi)
        assert outcome.ids == expected
        assert outcome.scheme_chosen  # routing is always attributed


@pytest.mark.parametrize("backend_kind", ["memory", "sqlite"])
@pytest.mark.parametrize("scheme", ALL_SCHEMES)
class TestEverySchemeMatchesOracle:
    @given(life=lives)
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_life_matches_oracle(self, scheme, backend_kind, life):
        kwargs = {}
        if scheme.startswith("constant"):
            kwargs["intersection_policy"] = "allow"
        with tempfile.TemporaryDirectory(prefix="diff-dispatch-") as tmpdir:
            backend = _open_backend(backend_kind, tmpdir)
            store = RangeStore.open(
                scheme,
                domain_size=DOMAIN,
                backend=backend,
                rng=random.Random(0xD15),
                **kwargs,
            )
            try:
                _run_life(store, life)
                assert store.search(0, DOMAIN - 1).scheme_chosen == scheme
            finally:
                store.close()


@pytest.mark.parametrize("backend_kind", ["memory", "sqlite"])
class TestDispatcherLaneMatchesOracle:
    """The hybrid store's *chosen* lane — whatever the cost model picks
    per query — must agree with the oracle exactly, too."""

    @given(life=lives)
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_hybrid_random_life_matches_oracle(self, backend_kind, life):
        with tempfile.TemporaryDirectory(prefix="diff-hybrid-") as tmpdir:
            backend = _open_backend(backend_kind, tmpdir)
            store = HybridRangeStore(
                domain_size=DOMAIN,
                backend=backend,
                rng=random.Random(0xD15),
            )
            try:
                _run_life(store, life)
                outcome = store.search(0, DOMAIN - 1)
                assert outcome.scheme_chosen in store.schemes
                assert len(outcome.plans_considered) == len(store.schemes)
            finally:
                store.close()

    @given(life=lives)
    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_forced_lanes_match_oracle(self, backend_kind, life):
        """Every forced override returns the oracle set as well."""
        with tempfile.TemporaryDirectory(prefix="diff-forced-") as tmpdir:
            backend = _open_backend(backend_kind, tmpdir)
            store = HybridRangeStore(
                domain_size=DOMAIN,
                backend=backend,
                rng=random.Random(0xF0C),
            )
            try:
                model = dict(life["initial"])
                store.insert_many(model.items())
                lo, hi = _norm(life["queries"][0])
                expected = frozenset(
                    r for r, v in model.items() if lo <= v <= hi
                )
                for lane in store.schemes:
                    store.dispatch = lane
                    outcome = store.search(lo, hi)
                    assert outcome.ids == expected
                    assert outcome.scheme_chosen == lane
                store.dispatch = "auto"
                assert store.search(lo, hi).ids == expected
            finally:
                store.close()
