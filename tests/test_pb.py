"""Unit tests for the PB baseline (Li et al.)."""

from __future__ import annotations

import random

import pytest

from repro.baselines.pb import PbScheme
from repro.baselines.plaintext import PlaintextRangeIndex


def build_pb(records, domain=512, seed=3, **kwargs):
    scheme = PbScheme(domain, rng=random.Random(seed), **kwargs)
    scheme.build_index(records)
    return scheme


class TestCorrectness:
    def test_no_false_negatives(self, small_records, small_oracle):
        scheme = build_pb(small_records)
        for lo, hi in [(0, 511), (10, 40), (250, 250), (100, 300)]:
            returned = set(scheme.search(scheme.trapdoor(lo, hi)))
            assert set(small_oracle.query(lo, hi)) <= returned

    def test_refined_results_exact(self, small_records, small_oracle):
        scheme = build_pb(small_records)
        for lo, hi in [(0, 511), (10, 40), (250, 250)]:
            assert sorted(scheme.query(lo, hi).ids) == sorted(
                small_oracle.query(lo, hi)
            )

    def test_empty_dataset(self):
        scheme = build_pb([])
        assert scheme.query(0, 511).ids == frozenset()

    def test_bloom_fp_rate_controls_false_positives(self, small_records):
        sloppy = build_pb(small_records, fp_rate=0.2)
        tight = build_pb(small_records, fp_rate=0.001)
        queries = [(10, 40), (100, 300), (400, 500)]
        fps_sloppy = sum(sloppy.query(lo, hi).false_positives for lo, hi in queries)
        fps_tight = sum(tight.query(lo, hi).false_positives for lo, hi in queries)
        assert fps_tight <= fps_sloppy

    def test_tighter_filter_costs_more_storage(self, small_records):
        sloppy = build_pb(small_records, fp_rate=0.2)
        tight = build_pb(small_records, fp_rate=0.001)
        assert tight.index_size_bytes() > sloppy.index_size_bytes()


class TestStructure:
    def test_storage_superlinear_in_n(self):
        """PB is O(n log n log m): per-tuple bytes must *grow* with n,
        whereas Logarithmic's O(n log m) per-tuple bytes stay flat.
        (At laptop scale PB's absolute size can still be smaller — the
        log n factor only dominates at the paper's millions of tuples.)
        """
        from repro.core.logarithmic import LogarithmicBrc

        def per_tuple(scheme_cls, n, **kwargs):
            rng = random.Random(1)
            records = [(i, rng.randrange(1 << 14)) for i in range(n)]
            scheme = scheme_cls(1 << 14, rng=random.Random(2), **kwargs)
            scheme.build_index(records)
            return scheme.index_size_bytes() / n

        assert per_tuple(PbScheme, 1024) > per_tuple(PbScheme, 128) * 1.15
        log_small = per_tuple(LogarithmicBrc, 128)
        log_large = per_tuple(LogarithmicBrc, 1024)
        assert abs(log_large - log_small) / log_small < 0.05

    def test_trapdoor_is_brc_sized(self):
        scheme = build_pb([(0, 5)])
        token = scheme.trapdoor(2, 7)
        assert len(token) == 2  # BRC of [2,7] = 2 nodes

    def test_trapdoor_labels_keyed(self):
        a = PbScheme(512, rng=random.Random(1))
        b = PbScheme(512, rng=random.Random(2))
        for scheme in (a, b):
            scheme.build_index([(0, 5)])
        assert set(a.trapdoor(2, 7).labels) != set(b.trapdoor(2, 7).labels)

    def test_foreign_trapdoor_finds_near_nothing(self, small_records):
        scheme = build_pb(small_records)
        foreign = PbScheme(512, rng=random.Random(99))
        foreign.build_index(small_records)
        token = foreign.trapdoor(0, 511)
        # Foreign labels only hit via Bloom false positives, never the
        # full result set.
        assert len(scheme.search(token)) < len(small_records) // 2

    def test_node_count_is_2n_minus_1(self, small_records):
        scheme = build_pb(small_records)
        assert scheme._node_count == 2 * len(small_records) - 1
