"""Tests for dataset and query generators."""

from __future__ import annotations

import pytest

from repro.workloads.datasets import (
    GOWALLA_DOMAIN,
    USPS_DOMAIN,
    clustered,
    distinct_fraction,
    gowalla_like,
    uniform,
    usps_like,
    with_distinct_fraction,
    zipf,
)
from repro.workloads.queries import (
    fixed_size_ranges,
    non_intersecting_ranges,
    percent_of_domain_ranges,
    random_ranges,
    sweep,
)


class TestDatasets:
    @pytest.mark.parametrize(
        "gen", [uniform, gowalla_like, usps_like]
    )
    def test_shape(self, gen):
        records = (
            gen(500, domain_size=10_000, seed=3)
            if gen is uniform
            else gen(500, seed=3)
        )
        assert len(records) == 500
        assert sorted(i for i, _ in records) == list(range(500))

    def test_values_in_domain(self):
        for doc_id, value in gowalla_like(300, seed=1):
            assert 0 <= value < GOWALLA_DOMAIN
        for doc_id, value in usps_like(300, seed=1):
            assert 0 <= value < USPS_DOMAIN

    def test_gowalla_distinct_fraction(self):
        records = gowalla_like(4000, domain_size=1 << 24, seed=5)
        assert 0.90 <= distinct_fraction(records) <= 1.0

    def test_usps_distinct_fraction(self):
        records = usps_like(4000, seed=5)
        assert 0.03 <= distinct_fraction(records) <= 0.08

    def test_usps_is_skewed(self):
        records = usps_like(4000, seed=5)
        from collections import Counter

        counts = Counter(v for _, v in records).most_common()
        # Zipf-weighted masses: top value holds far more than the mean.
        assert counts[0][1] > 5 * (len(records) / len(counts))

    def test_seed_determinism(self):
        assert gowalla_like(200, seed=9) == gowalla_like(200, seed=9)
        assert gowalla_like(200, seed=9) != gowalla_like(200, seed=10)

    def test_distinct_fraction_bounds(self):
        with pytest.raises(ValueError):
            with_distinct_fraction(10, 100, 0.0)
        with pytest.raises(ValueError):
            with_distinct_fraction(10, 100, 1.5)

    def test_pool_larger_than_domain_clamped(self):
        records = with_distinct_fraction(50, 10, 1.0, seed=1)
        assert len(records) == 50
        assert all(0 <= v < 10 for _, v in records)

    def test_zipf_skew(self):
        records = zipf(2000, 500, exponent=1.5, seed=2)
        assert distinct_fraction(records) < 0.25

    def test_clustered_values_clipped(self):
        records = clustered(500, 1000, clusters=4, seed=2)
        assert all(0 <= v < 1000 for _, v in records)

    def test_distinct_fraction_empty(self):
        assert distinct_fraction([]) == 0.0


class TestQueries:
    def test_random_ranges_valid(self):
        for lo, hi in random_ranges(1000, 200, seed=4):
            assert 0 <= lo <= hi < 1000

    def test_fixed_size_exact(self):
        for lo, hi in fixed_size_ranges(1000, 37, 100, seed=4):
            assert hi - lo + 1 == 37 and 0 <= lo and hi < 1000

    def test_fixed_size_bounds(self):
        with pytest.raises(ValueError):
            fixed_size_ranges(100, 0, 5)
        with pytest.raises(ValueError):
            fixed_size_ranges(100, 101, 5)

    def test_full_domain_range(self):
        (query,) = fixed_size_ranges(100, 100, 1, seed=1)
        assert query == (0, 99)

    def test_percent_of_domain(self):
        for lo, hi in percent_of_domain_ranges(1000, 10, 50, seed=4):
            assert hi - lo + 1 == 100

    def test_percent_bounds(self):
        with pytest.raises(ValueError):
            percent_of_domain_ranges(1000, 0, 5)
        with pytest.raises(ValueError):
            percent_of_domain_ranges(1000, 101, 5)

    def test_non_intersecting(self):
        queries = non_intersecting_ranges(10_000, 20, seed=4)
        assert len(queries) == 20
        for (l1, h1), (l2, h2) in zip(queries, queries[1:]):
            assert h1 < l2

    def test_non_intersecting_feeds_constant_scheme(self):
        """The generated workload must pass the intersection guard."""
        import random as _random

        from repro.core.constant import ConstantBrc

        scheme = ConstantBrc(1 << 12, rng=_random.Random(1))
        scheme.build_index([(i, i) for i in range(100)])
        for lo, hi in non_intersecting_ranges(1 << 12, 10, seed=3):
            scheme.query(lo, hi)  # must not raise

    def test_sweep_shape(self):
        points = list(sweep(1000, percents=(10, 50), queries_per_point=5, seed=1))
        assert [p for p, _ in points] == [10, 50]
        assert all(len(qs) == 5 for _, qs in points)
