"""Tests for the access-pattern identification analysis."""

from __future__ import annotations

import random

from repro.leakage.access_pattern import (
    identification_ambiguity,
    src_query_identification,
)

DOMAIN = 256


def records_uniform(n=150, seed=2):
    rng = random.Random(seed)
    return [(i, rng.randrange(DOMAIN)) for i in range(n)]


class TestIdentification:
    def test_honest_traces_always_match_something(self):
        records = records_uniform()
        rng = random.Random(3)
        queries = []
        for _ in range(10):
            a, b = rng.randrange(DOMAIN), rng.randrange(DOMAIN)
            queries.append((min(a, b), max(a, b)))
        report = identification_ambiguity(records, DOMAIN, queries)
        assert report.unidentified == 0
        assert len(report.candidates) == 10

    def test_candidate_buckets_actually_match(self):
        records = records_uniform()
        report = identification_ambiguity(records, DOMAIN, [(10, 60)])
        by_value: dict[int, list[int]] = {}
        for doc_id, value in records:
            by_value.setdefault(value, []).append(doc_id)
        from repro.covers.tdag import Tdag

        true_node = Tdag(DOMAIN).src_cover(10, 60)
        assert any(
            (c.level, c.index, c.injected)
            == (true_node.level, true_node.index, true_node.injected)
            for c in report.candidates[0]
        )

    def test_dense_data_identifies_queries(self):
        """With one tuple per domain value, every bucket is distinct:
        the adversary pins each query — the worst case the module warns
        about."""
        records = [(v, v) for v in range(DOMAIN)]
        report = identification_ambiguity(
            records, DOMAIN, [(3, 70), (100, 130), (0, 255)]
        )
        assert report.uniquely_identified == 3

    def test_sparse_data_increases_ambiguity(self):
        """With most values empty, many nodes share (empty) buckets:
        ambiguity grows — the countermeasure direction."""
        records = [(0, 50), (1, 200)]
        # SRC cover of [60, 70] holds no tuples: the observed empty
        # bucket is compatible with every other empty node.
        report = identification_ambiguity(records, DOMAIN, [(60, 70)])
        assert report.mean_ambiguity > 10
        assert report.uniquely_identified == 0

    def test_empty_observation_handles(self):
        report = src_query_identification(records_uniform(), DOMAIN, [])
        assert report.mean_ambiguity == 0.0
        assert report.uniquely_identified == 0

    def test_fabricated_observation_matches_nothing(self):
        records = records_uniform()
        impossible = frozenset({10**9})
        report = src_query_identification(records, DOMAIN, [impossible])
        assert report.unidentified == 1
