"""The examples are documentation — they must actually run.

Each example is executed as a subprocess exactly the way the README
tells users to run it; its internal assertions are the test.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{example.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{example.name} produced no output"


def test_example_inventory():
    """README promises at least quickstart + four scenario examples."""
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 5
