"""Unit tests for the pure-SSE retrieval floor."""

from __future__ import annotations

import random

import pytest

from repro.baselines.sse_floor import SseFloor


class TestSseFloor:
    def test_retrieves_exactly_r(self):
        floor = SseFloor(100, rng=random.Random(1))
        assert len(floor.retrieve(0)) == 0
        assert len(floor.retrieve(37)) == 37
        assert len(floor.retrieve(100)) == 100

    def test_all_ids_distinct(self):
        floor = SseFloor(50, rng=random.Random(1))
        ids = floor.retrieve(50)
        assert len(set(ids)) == 50 and set(ids) == set(range(50))

    def test_r_out_of_bounds(self):
        floor = SseFloor(10, rng=random.Random(1))
        with pytest.raises(ValueError):
            floor.retrieve(11)
        with pytest.raises(ValueError):
            floor.retrieve(-1)

    def test_work_scales_with_r(self):
        """The floor's whole point: retrieving r costs Θ(r)."""
        import time

        floor = SseFloor(4000, rng=random.Random(1))

        def cost(r, reps=3):
            best = float("inf")
            for _ in range(reps):
                start = time.perf_counter()
                floor.retrieve(r)
                best = min(best, time.perf_counter() - start)
            return best

        assert cost(4000) > cost(200)
