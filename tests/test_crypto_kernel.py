"""Crypto-kernel contract: serial/pooled equivalence, crossover,
crash fallback, and the engine-never-bypasses-the-kernel regression.

The kernel's one promise is byte-identical outputs across backends;
these tests pin it primitive by primitive, then pin the operational
behaviour around it — the crossover keeping small batches off the
pool, a SIGKILLed worker degrading to a counted serial fallback
instead of a hang, and the exec engine routing *every* leaf and label
through the kernel (the spy test) so no per-leaf ``hmac.digest`` loop
can quietly return.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.crypto import prg
from repro.crypto.dprf import DelegationToken, GgmDprf
from repro.crypto.kernel import (
    DEFAULT_OFFLOAD_MIN_UNITS,
    PooledKernel,
    SerialKernel,
    _chunk_by_weight,
    configure_default_kernel,
    default_kernel,
    make_kernel,
)
from repro.crypto.prf import prf, prf_many
from repro.errors import KeyError_, TokenError
from repro.sse.base import subkeys_from_secret
from repro.sse.pibas import posting_label, posting_labels

KEY = b"\x0b" * 32


@pytest.fixture(scope="module")
def pooled():
    """One pool for the whole module: spawn startup costs ~0.5 s, and
    every test here only needs *a* live worker lane, not a fresh one."""
    kernel = PooledKernel(2, offload_min_units=1)
    yield kernel
    kernel.close()


def _descriptors():
    return [
        (b"\x01" * 32, 5),
        (b"\x02" * 32, 0),
        (b"\x03" * 32, 7),
    ]


def _reference_subkeys(descriptors):
    return [
        tuple(
            subkeys_from_secret(leaf)
            for leaf in GgmDprf.iter_leaves(DelegationToken(seed, level))
        )
        for seed, level in descriptors
    ]


class TestSerialKernel:
    def test_expand_matches_iter_leaves(self):
        kernel = SerialKernel()
        descriptors = _descriptors()
        expected = [
            list(GgmDprf.iter_leaves(DelegationToken(seed, level)))
            for seed, level in descriptors
        ]
        assert kernel.expand_subtrees(descriptors) == expected

    def test_subkeys_match_scalar_path(self):
        kernel = SerialKernel()
        descriptors = _descriptors()
        assert kernel.derive_leaf_subkeys(descriptors) == _reference_subkeys(
            descriptors
        )

    def test_labels_match_scalar_path(self):
        kernel = SerialKernel()
        items = [(os.urandom(16), i) for i in range(40)]
        assert kernel.derive_labels(items) == [
            posting_label(key, counter) for key, counter in items
        ]
        assert kernel.derive_labels([]) == []

    def test_prf_prg_many(self):
        kernel = SerialKernel()
        messages = [b"m%d" % i for i in range(9)]
        assert kernel.prf_many(KEY, messages) == [prf(KEY, m) for m in messages]
        seeds = [os.urandom(32) for _ in range(5)]
        assert kernel.prg_many(seeds) == [prg._expand(s) for s in seeds]

    def test_counters(self):
        kernel = SerialKernel()
        kernel.derive_leaf_subkeys([(b"\x05" * 32, 4)])
        kernel.derive_labels([(b"\x06" * 16, 0)])
        stats = kernel.stats()
        assert stats["backend"] == "serial"
        assert stats["workers"] == 0
        assert stats["batches_serial"] == 2
        assert stats["batches_offloaded"] == 0
        assert stats["leaves_expanded"] == 16
        assert stats["labels_derived"] == 1
        assert stats["offload_ratio"] == 0.0

    def test_rejects_bad_descriptor(self):
        kernel = SerialKernel()
        with pytest.raises(TokenError):
            kernel.expand_subtrees([(b"short", 3)])
        with pytest.raises(TokenError):
            kernel.derive_leaf_subkeys([(b"\x01" * 32, -1)])


class TestPooledKernel:
    def test_byte_identical_to_serial(self, pooled):
        serial = SerialKernel()
        descriptors = _descriptors()
        assert pooled.derive_leaf_subkeys(
            descriptors
        ) == serial.derive_leaf_subkeys(descriptors)
        assert pooled.expand_subtrees(descriptors) == serial.expand_subtrees(
            descriptors
        )
        items = [(os.urandom(16), i) for i in range(300)]
        assert pooled.derive_labels(items) == serial.derive_labels(items)
        messages = [b"msg-%d" % i for i in range(50)]
        assert pooled.prf_many(KEY, messages) == prf_many(KEY, messages)
        seeds = [os.urandom(32) for _ in range(20)]
        assert pooled.prg_many(seeds) == serial.prg_many(seeds)
        assert pooled.stats()["batches_offloaded"] >= 5
        assert pooled.stats()["serial_fallbacks"] == 0

    def test_crossover_keeps_small_batches_serial(self):
        kernel = PooledKernel(2, offload_min_units=10_000)
        try:
            before = kernel.stats()
            kernel.derive_leaf_subkeys([(b"\x07" * 32, 6)])  # 128 units
            kernel.derive_labels([(b"\x08" * 16, i) for i in range(64)])
            stats = kernel.stats()
            assert stats["batches_serial"] == before["batches_serial"] + 2
            assert stats["batches_offloaded"] == 0
            # Never offloaded => the pool was never even created.
            assert kernel._pool is None
        finally:
            kernel.close()

    def test_worker_crash_falls_back_serially(self):
        """SIGKILL every pool worker, then ask for a batch: the query
        must complete (correct bytes, no hang), count one serial
        fallback, and the *next* batch must offload again through a
        lazily rebuilt pool."""
        kernel = PooledKernel(2, offload_min_units=1)
        serial = SerialKernel()
        descriptors = [(b"\x09" * 32, 8)]
        try:
            for pid in kernel.worker_pids():
                os.kill(pid, signal.SIGKILL)
            t0 = time.monotonic()
            result = kernel.derive_leaf_subkeys(descriptors)
            assert time.monotonic() - t0 < 30  # completed, no hang
            assert result == serial.derive_leaf_subkeys(descriptors)
            stats = kernel.stats()
            assert stats["serial_fallbacks"] == 1
            # Recovery: the pool rebuilds lazily and offloads again.
            assert kernel.derive_labels(
                [(b"\x0a" * 16, i) for i in range(8)]
            ) == serial.derive_labels([(b"\x0a" * 16, i) for i in range(8)])
            after = kernel.stats()
            assert after["batches_offloaded"] >= 1
            assert after["serial_fallbacks"] == 1
        finally:
            kernel.close()

    def test_sim_mode_computes_inline_and_occupies_lanes(self):
        kernel = PooledKernel(3, offload_min_units=1, sim_hmac_s=1e-9)
        serial = SerialKernel()
        try:
            descriptors = _descriptors()
            assert kernel.derive_leaf_subkeys(
                descriptors
            ) == serial.derive_leaf_subkeys(descriptors)
            stats = kernel.stats()
            assert stats["batches_offloaded"] == 1
            # The simulated lane never creates a real pool.
            assert kernel._pool is None
        finally:
            kernel.close()


class TestChunking:
    def test_preserves_order_and_items(self):
        items = list(range(17))
        weights = [1 + (i % 5) for i in items]
        chunks = _chunk_by_weight(items, weights, 4)
        assert [x for chunk in chunks for x in chunk] == items
        assert len(chunks) <= 4

    def test_single_chunk_cases(self):
        assert _chunk_by_weight([1], [3], 4) == [[1]]
        assert _chunk_by_weight([1, 2], [1, 1], 1) == [[1, 2]]


class TestConfig:
    def test_make_kernel_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CRYPTO_WORKERS", raising=False)
        assert make_kernel().name == "serial"
        monkeypatch.setenv("REPRO_CRYPTO_WORKERS", "0")
        assert make_kernel().name == "serial"
        monkeypatch.setenv("REPRO_CRYPTO_WORKERS", "3")
        kernel = make_kernel()
        assert kernel.name == "pooled" and kernel.workers == 3
        kernel.close()
        monkeypatch.setenv("REPRO_CRYPTO_WORKERS", "nope")
        with pytest.raises(ValueError):
            make_kernel()

    def test_explicit_workers_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CRYPTO_WORKERS", "4")
        assert make_kernel(0).name == "serial"

    def test_crossover_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CRYPTO_CROSSOVER", "17")
        kernel = PooledKernel(1)
        try:
            assert kernel.offload_min_units == 17
        finally:
            kernel.close()
        monkeypatch.delenv("REPRO_CRYPTO_CROSSOVER")
        kernel = PooledKernel(1)
        try:
            assert kernel.offload_min_units == DEFAULT_OFFLOAD_MIN_UNITS
        finally:
            kernel.close()

    def test_sim_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CRYPTO_SIM_HMAC_US", "2.5")
        kernel = make_kernel(0)
        assert kernel.sim_hmac_s == pytest.approx(2.5e-6)

    def test_configure_default_kernel(self):
        try:
            kernel = configure_default_kernel(0)
            assert kernel.name == "serial"
            assert default_kernel() is kernel
        finally:
            configure_default_kernel(0)

    def test_configure_default_executor_wires_kernel(self):
        from repro.exec import configure_default_executor

        try:
            executor = configure_default_executor(crypto_workers=0)
            assert executor.kernel.name == "serial"
            assert executor.kernel is default_kernel()
        finally:
            configure_default_executor(crypto_workers=0)


class TestDprfKernelEntryPoints:
    def test_expand_token_via_kernel(self):
        kernel = SerialKernel()
        token = DelegationToken(b"\x11" * 32, 6)
        assert GgmDprf.expand_token(token, kernel=kernel) == GgmDprf.expand_token(
            token
        )
        tokens = [token, DelegationToken(b"\x12" * 32, 3)]
        assert GgmDprf.expand_all(tokens, kernel=kernel) == GgmDprf.expand_all(
            tokens
        )

    def test_descriptor_round_trip(self):
        token = DelegationToken(b"\x13" * 32, 4)
        seed, level = token.descriptor()
        assert DelegationToken(seed, level) == token


class TestBatchEntryPoints:
    def test_posting_labels_matches_scalar(self):
        key = b"\x14" * 16
        assert posting_labels(key, range(10)) == [
            posting_label(key, i) for i in range(10)
        ]

    def test_subkeys_many_matches_scalar(self):
        from repro.sse.base import subkeys_from_secret_many

        secrets = [os.urandom(32) for _ in range(5)] + [b"short"]
        assert subkeys_from_secret_many(secrets) == [
            subkeys_from_secret(s) for s in secrets
        ]

    def test_prf_many_checks_key(self):
        with pytest.raises(KeyError_):
            prf_many(b"short", [b"m"])


class _SpyKernel(SerialKernel):
    """Counts exactly what flows through the kernel seam."""

    def __init__(self) -> None:
        super().__init__()
        self.label_items = 0
        self.subkey_leaves = 0

    def derive_labels(self, items):
        items = list(items)
        self.label_items += len(items)
        return super().derive_labels(items)

    def derive_leaf_subkeys(self, descriptors):
        descriptors = list(descriptors)
        self.subkey_leaves += sum(1 << level for _, level in descriptors)
        return super().derive_leaf_subkeys(descriptors)


class TestEngineNeverBypassesKernel:
    """The spy-kernel regression: on batched paths the engine derives
    every probed label and every expanded leaf *through the kernel* —
    a reintroduced per-leaf ``hmac.digest`` loop would make the spy
    counters fall short of the engine's own realized stats."""

    def _scheme(self, name, spy, seed=3):
        import random

        from repro.core.registry import make_scheme
        from repro.exec.engine import QueryExecutor

        executor = QueryExecutor(workers=1, cache=False, kernel=spy)
        kwargs = (
            {"intersection_policy": "allow"}
            if name.startswith("constant")
            else {}
        )
        return make_scheme(
            name, 128, rng=random.Random(seed), executor=executor, **kwargs
        )

    def test_dprf_path_counts_match_stats(self):
        import random

        spy = _SpyKernel()
        scheme = self._scheme("constant-brc", spy)
        rng = random.Random(5)
        records = [(i, rng.randrange(128)) for i in range(80)]
        scheme.build_index(records)
        scheme.query(10, 90)
        stats = scheme.last_exec_stats
        assert stats.leaves_derived > 0
        assert spy.subkey_leaves == stats.leaves_derived
        assert spy.label_items == stats.probes_issued

    def test_sse_path_counts_match_stats(self):
        import random

        spy = _SpyKernel()
        scheme = self._scheme("logarithmic-brc", spy)
        rng = random.Random(6)
        records = [(i, rng.randrange(128)) for i in range(60)]
        scheme.build_index(records)
        scheme.query(0, 100)
        stats = scheme.last_exec_stats
        assert stats.probes_issued > 0
        assert spy.label_items == stats.probes_issued
