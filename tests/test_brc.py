"""Unit and property tests for the Best Range Cover."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.covers.brc import best_range_cover, brc_node_count
from repro.covers.dyadic import Node
from repro.errors import InvalidRangeError


def covered_values(nodes):
    out = []
    for node in nodes:
        out.extend(range(node.lo, node.hi + 1))
    return out


class TestPaperExamples:
    def test_range_2_7(self):
        # Paper Figure 1: [2, 7] covered by N2,3 and N4,7.
        assert best_range_cover(2, 7) == [Node(1, 1), Node(2, 1)]

    def test_range_1_6(self):
        # Paper: [1, 6] covered by N1, N2,3, N4,5, N6.
        assert best_range_cover(1, 6) == [
            Node(0, 1),
            Node(1, 1),
            Node(1, 2),
            Node(0, 6),
        ]

    def test_single_value(self):
        assert best_range_cover(5, 5) == [Node(0, 5)]

    def test_aligned_range_single_node(self):
        assert best_range_cover(4, 7) == [Node(2, 1)]
        assert best_range_cover(0, 7) == [Node(3, 0)]

    def test_invalid(self):
        with pytest.raises(InvalidRangeError):
            best_range_cover(5, 3)
        with pytest.raises(InvalidRangeError):
            best_range_cover(-1, 3)


class TestExhaustiveSmallDomain:
    def test_all_ranges_of_domain_64(self):
        for lo in range(64):
            for hi in range(lo, 64):
                nodes = best_range_cover(lo, hi)
                assert sorted(covered_values(nodes)) == list(range(lo, hi + 1))

    def test_at_most_two_nodes_per_level(self):
        for lo in range(64):
            for hi in range(lo, 64):
                levels = [n.level for n in best_range_cover(lo, hi)]
                for lvl in set(levels):
                    assert levels.count(lvl) <= 2

    def test_left_to_right_order(self):
        for lo in range(0, 64, 3):
            for hi in range(lo, 64, 5):
                nodes = best_range_cover(lo, hi)
                assert all(a.hi < b.lo for a, b in zip(nodes, nodes[1:]))


@st.composite
def ranges(draw, max_value=1 << 30):
    lo = draw(st.integers(0, max_value))
    hi = draw(st.integers(lo, max_value))
    return lo, hi


class TestProperties:
    @given(ranges(max_value=1 << 14))
    @settings(max_examples=300)
    def test_exact_disjoint_cover(self, rng):
        lo, hi = rng
        nodes = best_range_cover(lo, hi)
        values = covered_values(nodes)
        assert len(values) == len(set(values)) == hi - lo + 1
        assert min(values) == lo and max(values) == hi

    @given(ranges())
    @settings(max_examples=300)
    def test_logarithmic_node_count(self, rng):
        lo, hi = rng
        size = hi - lo + 1
        assert brc_node_count(lo, hi) <= 2 * size.bit_length()

    @given(ranges(max_value=1 << 12))
    def test_minimality_against_greedy_merge(self, rng):
        # No two adjacent cover nodes may be mergeable siblings — a
        # mergeable pair would contradict minimality.
        lo, hi = rng
        nodes = best_range_cover(lo, hi)
        for a, b in zip(nodes, nodes[1:]):
            if a.level == b.level and a.index + 1 == b.index and a.index % 2 == 0:
                pytest.fail(f"mergeable siblings {a!r}, {b!r} in cover of [{lo},{hi}]")
