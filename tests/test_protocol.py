"""Tests for the owner ↔ server wire protocol."""

from __future__ import annotations

import random

import pytest

from repro.baselines.plaintext import PlaintextRangeIndex
from repro.core.constant import ConstantBrc
from repro.core.log_src import LogarithmicSrc
from repro.core.logarithmic import LogarithmicBrc
from repro.errors import IndexStateError, TokenError
from repro.protocol import (
    DropIndex,
    FetchRequest,
    RemoteRangeClient,
    RsseServer,
    SearchRequest,
    UploadIndex,
    UploadRecords,
    parse_frame,
    parse_message,
)
from repro.protocol.messages import SearchResponse, FetchResponse


class TestFrames:
    @pytest.mark.parametrize(
        "message",
        [
            UploadIndex(7, b"edb-bytes"),
            UploadRecords(7, [(1, b"blob1"), (2, b"blob2")]),
            SearchRequest(7, "sse", [b"t" * 32, b"u" * 32]),
            SearchRequest(7, "dprf", [b"s" * 33]),
            SearchResponse([b"p1", b"p2"]),
            FetchRequest(7, [1, 2, 3]),
            FetchResponse([b"b1"]),
            DropIndex(7),
        ],
        ids=lambda m: type(m).__name__ + "-" + getattr(m, "kind", ""),
    )
    def test_round_trip(self, message):
        assert parse_message(message.to_frame()) == message

    def test_truncated_frame_rejected(self):
        with pytest.raises(TokenError):
            parse_frame(b"\x01")

    def test_length_mismatch_rejected(self):
        frame = UploadIndex(1, b"x").to_frame()
        with pytest.raises(TokenError):
            parse_frame(frame + b"extra")

    def test_unknown_tag_rejected(self):
        with pytest.raises(TokenError):
            parse_message(b"\x63" + (1).to_bytes(4, "big") + b"x")

    def test_truncated_chunk_list_rejected(self):
        good = SearchRequest(1, "sse", [b"t" * 32]).to_frame()
        # Corrupt the inner chunk length to point past the body.
        bad = bytearray(good)
        bad[-33] = 0xFF
        with pytest.raises(TokenError):
            parse_message(bytes(bad))


class TestServer:
    def test_unknown_index_handle(self):
        server = RsseServer()
        with pytest.raises(IndexStateError):
            server.handle(SearchRequest(99, "sse", [b"t" * 32]).to_frame())

    def test_drop_is_idempotent(self):
        server = RsseServer()
        server.handle(DropIndex(4).to_frame())  # no raise

    def test_bad_wire_token_length(self):
        server = RsseServer()
        server.handle(UploadIndex(1, b"").to_frame())
        # Empty EDB parses as zero entries; a malformed token must raise.
        with pytest.raises(TokenError):
            server.handle(SearchRequest(1, "sse", [b"short"]).to_frame())

    def test_stored_bytes_accounting(self):
        server = RsseServer()
        server.handle(UploadIndex(1, b"").to_frame())
        server.handle(UploadRecords(1, [(5, b"0123456789")]).to_frame())
        assert server.stored_bytes() == 8 + 10  # record id + blob; EDB empty
        assert server.index_count() == 1


@pytest.mark.parametrize("scheme_cls", [LogarithmicBrc, LogarithmicSrc])
class TestRemoteRoundTrip:
    def test_remote_equals_oracle(self, scheme_cls, small_records, small_oracle):
        server = RsseServer()
        scheme = scheme_cls(512, rng=random.Random(1))
        client = RemoteRangeClient(
            scheme, server.handle, rng=random.Random(2)
        )
        client.outsource(small_records)
        # The owner kept nothing but keys:
        assert scheme._index is None and scheme._encrypted_store == {}
        for lo, hi in [(0, 511), (37, 411), (250, 250)]:
            assert sorted(client.query(lo, hi)) == sorted(small_oracle.query(lo, hi))

    def test_retire_removes_server_state(self, scheme_cls, small_records):
        server = RsseServer()
        client = RemoteRangeClient(
            scheme_cls(512, rng=random.Random(1)), server.handle, rng=random.Random(2)
        )
        client.outsource(small_records)
        assert server.index_count() == 1
        client.retire()
        assert server.index_count() == 0
        with pytest.raises(IndexStateError):
            client.query(0, 10)


class TestRemoteDprf:
    def test_constant_scheme_over_the_wire(self, small_records, small_oracle):
        """Drive a Constant-BRC search through DPRF wire tokens manually:
        the server expands GGM seeds itself and never sees the range."""
        server = RsseServer()
        scheme = ConstantBrc(512, rng=random.Random(1), intersection_policy="allow")
        scheme.build_index(small_records)
        server.handle(UploadIndex(3, scheme._index.to_bytes()).to_frame())
        server.handle(
            UploadRecords(3, list(scheme._encrypted_store.items())).to_frame()
        )
        lo, hi = 100, 180
        token = scheme.trapdoor(lo, hi)
        wire_tokens = [t.seed + bytes([t.level]) for t in token]
        response = parse_message(
            server.handle(SearchRequest(3, "dprf", wire_tokens).to_frame())
        )
        from repro.sse.encoding import decode_id

        ids = [decode_id(p) for p in response.payloads]
        assert sorted(ids) == sorted(small_oracle.query(lo, hi))

    def test_query_before_outsource(self):
        server = RsseServer()
        client = RemoteRangeClient(
            LogarithmicBrc(64, rng=random.Random(1)), server.handle
        )
        with pytest.raises(IndexStateError):
            client.query(0, 1)
