"""Unit tests for the plaintext oracle index."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.baselines.plaintext import PlaintextRangeIndex


class TestBasics:
    def test_empty(self):
        index = PlaintextRangeIndex([])
        assert index.query(0, 100) == [] and index.count(0, 100) == 0

    def test_point_query(self):
        index = PlaintextRangeIndex([(1, 5), (2, 7), (3, 5)])
        assert sorted(index.query(5, 5)) == [1, 3]

    def test_inverted_range_empty(self):
        index = PlaintextRangeIndex([(1, 5)])
        assert index.query(9, 2) == []

    def test_count_matches_query(self):
        index = PlaintextRangeIndex([(i, i % 10) for i in range(100)])
        for lo in range(10):
            for hi in range(lo, 10):
                assert index.count(lo, hi) == len(index.query(lo, hi))

    def test_distinct_values(self):
        index = PlaintextRangeIndex([(0, 1), (1, 1), (2, 2)])
        assert index.distinct_values() == 2

    def test_len(self):
        assert len(PlaintextRangeIndex([(0, 1), (1, 2)])) == 2


class TestBruteForceEquivalence:
    @given(
        st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 255)), max_size=80),
        st.integers(0, 255),
        st.integers(0, 255),
    )
    @settings(max_examples=150)
    def test_matches_scan(self, pairs, a, b):
        # De-duplicate ids while keeping arbitrary values.
        records = list({doc_id: value for doc_id, value in pairs}.items())
        lo, hi = min(a, b), max(a, b)
        index = PlaintextRangeIndex(records)
        expected = sorted(i for i, v in records if lo <= v <= hi)
        assert sorted(index.query(lo, hi)) == expected
