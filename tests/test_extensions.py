"""Tests for the multi-dimensional composition and Quadratic padding."""

from __future__ import annotations

import random

import pytest

from repro.core.quadratic import Quadratic
from repro.core.registry import make_scheme
from repro.errors import DomainError, IndexStateError
from repro.extensions import MultiDimScheme


def factory(name="logarithmic-brc", domain=256, seed=0):
    seeder = random.Random(seed)

    def make():
        return make_scheme(name, domain, rng=random.Random(seeder.randrange(2**62)))

    return make


class TestMultiDim:
    def test_two_dimensional_conjunction(self):
        md = MultiDimScheme([factory(seed=1), factory(seed=2)])
        # (id, x, y) points on a small grid.
        points = [(i, (i * 17) % 256, (i * 41) % 256) for i in range(100)]
        md.build_index(points)
        xr, yr = (20, 180), (50, 220)
        expected = {
            i for i, x, y in points if xr[0] <= x <= xr[1] and yr[0] <= y <= yr[1]
        }
        outcome = md.query([xr, yr])
        assert outcome.ids == expected
        assert outcome.rounds == 2

    def test_three_dimensions_mixed_schemes(self):
        md = MultiDimScheme(
            [
                factory("logarithmic-brc", seed=3),
                factory("logarithmic-src", seed=4),
                factory("logarithmic-src-i", seed=5),
            ]
        )
        points = [(i, i % 256, (i * 7) % 256, (255 - i) % 256) for i in range(80)]
        md.build_index(points)
        ranges = [(0, 128), (10, 200), (100, 255)]
        expected = {
            rec[0]
            for rec in points
            if all(lo <= rec[1 + d] <= hi for d, (lo, hi) in enumerate(ranges))
        }
        assert md.query(ranges).ids == expected

    def test_empty_intersection(self):
        md = MultiDimScheme([factory(seed=6), factory(seed=7)])
        md.build_index([(1, 10, 200), (2, 200, 10)])
        assert md.query([(0, 50), (0, 50)]).ids == frozenset()

    def test_arity_checked(self):
        md = MultiDimScheme([factory(seed=8), factory(seed=9)])
        with pytest.raises(DomainError):
            md.build_index([(1, 10)])  # missing second value
        md.build_index([(1, 10, 20)])
        with pytest.raises(DomainError):
            md.query([(0, 50)])

    def test_zero_dimensions_rejected(self):
        with pytest.raises(DomainError):
            MultiDimScheme([])

    def test_query_before_build(self):
        md = MultiDimScheme([factory(seed=10)])
        with pytest.raises(IndexStateError):
            md.query([(0, 1)])

    def test_index_size_sums_dimensions(self):
        md = MultiDimScheme([factory(seed=11), factory(seed=12)])
        md.build_index([(i, i % 256, (i * 3) % 256) for i in range(50)])
        assert md.index_size_bytes() == sum(
            s.index_size_bytes() for s in md.schemes
        )

    def test_dimensions_use_independent_keys(self):
        """A trapdoor for dimension 0 must find nothing in dimension 1."""
        md = MultiDimScheme([factory(seed=13), factory(seed=14)])
        md.build_index([(i, 100, 100) for i in range(20)])
        token = md.schemes[0].trapdoor(0, 255)
        assert md.schemes[1].search(token) == []


class TestQuadraticPadding:
    def test_padded_index_size_depends_only_on_n_and_m(self):
        """The paper's padding argument: two datasets with wildly
        different distributions must produce byte-identical index sizes."""
        m, n = 12, 8
        uniform_data = [(i, i % m) for i in range(n)]
        skewed_data = [(i, 0) for i in range(n)]
        sizes = []
        for data in (uniform_data, skewed_data):
            scheme = Quadratic(m, padded=True, rng=random.Random(1))
            scheme.build_index(data)
            sizes.append(scheme.index_size_bytes())
        assert sizes[0] == sizes[1]

    def test_unpadded_leaks_distribution(self):
        m, n = 12, 8
        sizes = []
        for data in ([(i, i % m) for i in range(n)], [(i, 0) for i in range(n)]):
            scheme = Quadratic(m, padded=False, rng=random.Random(1))
            scheme.build_index(data)
            sizes.append(scheme.index_size_bytes())
        assert sizes[0] != sizes[1]

    def test_padded_queries_still_exact(self):
        scheme = Quadratic(16, padded=True, rng=random.Random(2))
        records = [(i, (i * 5) % 16) for i in range(10)]
        scheme.build_index(records)
        for lo, hi in [(0, 15), (3, 9), (7, 7)]:
            expected = sorted(i for i, v in records if lo <= v <= hi)
            assert sorted(scheme.query(lo, hi).ids) == expected

    def test_padding_counted_as_false_positives(self):
        scheme = Quadratic(8, padded=True, rng=random.Random(3))
        scheme.build_index([(0, 2), (1, 5)])
        outcome = scheme.query(2, 2)
        assert outcome.ids == {0}
        assert outcome.false_positives == 1  # one dummy padded the list

    def test_id_collision_with_padding_space_rejected(self):
        scheme = Quadratic(8, padded=True, rng=random.Random(4))
        with pytest.raises(DomainError):
            scheme.build_index([((1 << 64) - 2, 3)])
