"""The network service layer end to end: every scheme, real sockets.

The acceptance bar: :class:`~repro.protocol.RemoteRangeClient` drives
all seven registry schemes over a genuine TCP connection with results
byte-identical to the in-process transport, and the service mechanics
(acks, typed errors, stats, pipelining, backpressure, graceful drain)
hold up under concurrent clients.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import make_scheme
from repro.errors import IndexStateError, TransportError
from repro.net import NetTransport, serve_in_thread
from repro.protocol import (
    OkResponse,
    RemoteRangeClient,
    RsseServer,
    StatsResponse,
    UploadRecords,
    parse_reply,
)
from repro.protocol import messages as msg

#: Every wire-capable scheme (PB's Bloom tree has no EDB to outsource).
NET_SCHEMES = (
    "quadratic",
    "constant-brc",
    "constant-urc",
    "logarithmic-brc",
    "logarithmic-urc",
    "logarithmic-src",
    "logarithmic-src-i",
)


def _domain(name: str) -> int:
    return 64 if name == "quadratic" else 128


def _build(name: str, seed: int):
    kwargs = {"intersection_policy": "allow"} if name.startswith("constant") else {}
    return make_scheme(name, _domain(name), rng=random.Random(seed), **kwargs)


@pytest.fixture(scope="module")
def dataset():
    rng = random.Random(0xBEEF)
    return [(i, rng.randrange(64)) for i in range(120)]


def _upload_frames(scheme, base_id: int) -> "list[bytes]":
    """The exact upload frames RemoteRangeClient.outsource would send."""
    names = scheme.index_names()
    state = scheme.export_server_state()
    frames = [
        msg.UploadIndex(base_id + offset, state.indexes[name]).to_frame()
        for offset, name in enumerate(names)
    ]
    records_id = base_id + len(names) - 1
    frames.append(msg.UploadRecords(records_id, state.tuples).to_frame())
    if state.payloads:
        frames.append(msg.UploadPayloads(records_id, state.payloads).to_frame())
    return frames


@pytest.mark.parametrize("name", NET_SCHEMES)
class TestAllSchemesOverTcp:
    def test_tcp_byte_identical_to_in_process(self, name, dataset):
        """One scheme, one exported server state, the *same* request
        frames through both transports: every response frame must be
        byte-identical.  This subsumes result equality — if the bytes
        match, the decoded ids match — and pins the serialization seam
        itself, not just the refined result sets."""
        base_id = 1000
        scheme = _build(name, seed=11)
        scheme.build_index(dataset)
        inproc = RsseServer()
        with serve_in_thread(RsseServer()) as server:
            with NetTransport("127.0.0.1", server.port, pool_size=2) as transport:
                for frame in _upload_frames(scheme, base_id):
                    inproc_reply = inproc.handle_request(frame)
                    assert transport(frame) == inproc_reply
                search_handle = base_id
                records_handle = base_id + len(scheme.index_names()) - 1
                for lo, hi in [(0, 63), (5, 40), (33, 33), (60, 63)]:
                    if scheme.interactive:
                        token = scheme.trapdoor_phase1(lo, hi)
                    else:
                        token = scheme.trapdoor(lo, hi)
                    frame = msg.SearchRequest(
                        search_handle, token.wire_kind, token.wire_tokens()
                    ).to_frame()
                    inproc_reply = inproc.handle_request(frame)
                    assert transport(frame) == inproc_reply
                    if scheme.interactive:
                        # Round 2 rides the round-1 answer (the paper's
                        # two-round protocol) — still the same frames
                        # on both transports.
                        from repro.sse.encoding import decode_triple

                        payloads = parse_reply(inproc_reply).payloads
                        merged = scheme.merge_qualifying(
                            [decode_triple(p) for p in payloads], lo, hi
                        )
                        if merged is None:
                            continue
                        token2 = scheme.trapdoor_phase2(*merged)
                        frame2 = msg.SearchRequest(
                            records_handle, token2.wire_kind, token2.wire_tokens()
                        ).to_frame()
                        inproc_reply2 = inproc.handle_request(frame2)
                        assert transport(frame2) == inproc_reply2
                        candidates = parse_reply(inproc_reply2).payloads
                    else:
                        candidates = parse_reply(inproc_reply).payloads
                    from repro.sse.encoding import decode_id

                    ids = sorted(
                        set(
                            scheme.fetchable_ids(
                                [decode_id(p) for p in candidates]
                            )
                        )
                    )
                    if ids:
                        fetch = msg.FetchRequest(records_handle, ids).to_frame()
                        assert transport(fetch) == inproc.handle_request(fetch)

    def test_full_client_pipeline_over_tcp(self, name, dataset):
        """The whole RemoteRangeClient flow (outsource → query →
        query_many) over TCP matches a fresh in-process run set-wise."""
        from repro.baselines.plaintext import PlaintextRangeIndex

        oracle = PlaintextRangeIndex(dataset)
        ranges = [(0, 63), (5, 40), (33, 33)]
        with serve_in_thread(RsseServer()) as server:
            with NetTransport("127.0.0.1", server.port, pool_size=2) as transport:
                client = RemoteRangeClient(
                    _build(name, seed=12), transport, rng=random.Random(3)
                )
                client.outsource(dataset)
                for lo, hi in ranges:
                    assert sorted(client.query(lo, hi)) == sorted(
                        oracle.query(lo, hi)
                    )
                assert client.query_many(ranges) == [
                    frozenset(oracle.query(lo, hi)) for lo, hi in ranges
                ]


class TestServiceMechanics:
    def test_uploads_are_acked(self):
        with serve_in_thread(RsseServer()) as server:
            with NetTransport("127.0.0.1", server.port) as transport:
                reply = parse_reply(
                    transport(UploadRecords(1, [(1, b"blob")]).to_frame())
                )
                assert isinstance(reply, OkResponse)

    def test_semantic_error_maps_to_same_exception(self):
        with serve_in_thread(RsseServer()) as server:
            with NetTransport("127.0.0.1", server.port) as transport:
                with pytest.raises(IndexStateError):
                    parse_reply(
                        transport(
                            msg.SearchRequest(777, "sse", [b"t" * 32]).to_frame()
                        )
                    )

    def test_stats_surface(self):
        with serve_in_thread(RsseServer()) as server:
            with NetTransport("127.0.0.1", server.port) as transport:
                transport(UploadRecords(5, [(1, b"x")]).to_frame())
                stats = transport.stats()
                assert stats["server"]["handles"] == 1
                net = stats["net"]
                assert net["connections_total"] >= 1
                assert net["frames_in"] >= 1
                assert net["ops"]["upload-records"]["count"] == 1
                assert net["ops"]["upload-records"]["mean_seconds"] >= 0

    def test_pipelined_send_many_order(self):
        """A pipelined batch answers in exact request order."""
        with serve_in_thread(RsseServer()) as server:
            with NetTransport("127.0.0.1", server.port, pool_size=3) as transport:
                frames = [
                    UploadRecords(9, [(i, b"v%d" % i)]).to_frame()
                    for i in range(10)
                ] + [msg.StatsRequest().to_frame()]
                replies = transport.send_many(frames)
                assert len(replies) == 11
                for reply in replies[:10]:
                    assert isinstance(parse_reply(reply), OkResponse)
                assert isinstance(parse_reply(replies[10]), StatsResponse)

    def test_backpressure_bound_still_serves_everyone(self, dataset):
        """max_inflight=1 serializes the service without losing or
        reordering anyone's replies."""
        with serve_in_thread(RsseServer(), max_inflight=1) as server:
            scheme = _build("logarithmic-brc", seed=5)
            with NetTransport("127.0.0.1", server.port) as transport:
                owner = RemoteRangeClient(scheme, transport, rng=random.Random(4))
                owner.outsource(dataset)
                expected = owner.query(5, 40)

                failures: "list[BaseException]" = []

                def worker():
                    try:
                        with NetTransport("127.0.0.1", server.port) as t:
                            client = RemoteRangeClient(
                                scheme, t, index_id=owner.index_id
                            )
                            client.attach()
                            for _ in range(3):
                                assert client.query(5, 40) == expected
                    except BaseException as exc:  # noqa: BLE001
                        failures.append(exc)

                threads = [threading.Thread(target=worker) for _ in range(4)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                assert not failures
            assert server.stats().inflight_peak == 1

    def test_graceful_stop_refuses_new_connections(self):
        server = serve_in_thread(RsseServer())
        transport = NetTransport("127.0.0.1", server.port)
        transport(UploadRecords(2, [(1, b"y")]).to_frame())
        port = server.port
        server.stop()
        transport.close()
        with pytest.raises(TransportError):
            NetTransport("127.0.0.1", port, retries=1, backoff_s=0.01)

    def test_attach_queries_without_reupload(self, dataset):
        """A second client with the same keys adopts the uploaded index."""
        with serve_in_thread(RsseServer()) as server:
            scheme = _build("logarithmic-src", seed=6)
            with NetTransport("127.0.0.1", server.port) as transport:
                owner = RemoteRangeClient(scheme, transport, rng=random.Random(4))
                owner.outsource(dataset)
                frames_before = server.stats().frames_in
                sibling = RemoteRangeClient(
                    scheme, transport, index_id=owner.index_id
                )
                sibling.attach()
                # attach() itself cost zero frames (stats read directly
                # off the server handle, not via a StatsRequest frame).
                assert server.stats().frames_in == frames_before
                assert sibling.query(0, 63) == owner.query(0, 63)
                assert server.stats().frames_in > frames_before

    def test_outsource_requires_built_scheme_when_no_records(self):
        with serve_in_thread(RsseServer()) as server:
            with NetTransport("127.0.0.1", server.port) as transport:
                client = RemoteRangeClient(
                    _build("logarithmic-brc", seed=8), transport
                )
                with pytest.raises(IndexStateError):
                    client.outsource()  # nothing built, nothing to upload


class TestLockHygiene:
    def test_write_lock_map_holds_only_inflight_writes(self, dataset):
        """The per-index lock map is refcounted down to nothing once
        writers finish — a long-lived server sees a fresh random handle
        per owner session, so any leftover entry is an unbounded leak."""
        with serve_in_thread(RsseServer()) as server:
            with NetTransport("127.0.0.1", server.port) as transport:
                client = RemoteRangeClient(
                    _build("logarithmic-brc", seed=9), transport
                )
                client.outsource(dataset)
                assert server.server._index_locks == {}
                client.query(0, 63)
                client.retire()
                assert server.server._index_locks == {}


class TestSlowReaderBackpressure:
    def test_non_reading_pipeliner_cannot_grow_server_memory(self, dataset):
        """A client that pipelines requests but never reads replies must
        stall its own reader (bounded response queue + TCP window), not
        accumulate completed responses server-side — and must not
        affect other connections."""
        import socket as socketlib
        import time as timelib

        with serve_in_thread(RsseServer(), max_inflight=4) as server:
            with NetTransport("127.0.0.1", server.port) as transport:
                # One handle with ~2 MiB of tuples: each fetch reply is
                # large enough that a handful fills the socket buffers.
                blobs = [(i, bytes([i % 251]) * 10_000) for i in range(200)]
                transport(UploadRecords(77, blobs).to_frame())
                fetch = msg.FetchRequest(77, [i for i, _ in blobs]).to_frame()

                hostile = socketlib.create_connection(
                    ("127.0.0.1", server.port), timeout=10
                )
                sent = 0
                hostile.setblocking(False)
                deadline = timelib.monotonic() + 2.0
                while sent < 300 and timelib.monotonic() < deadline:
                    try:
                        hostile.sendall(fetch)
                        sent += 1
                    except (BlockingIOError, socketlib.timeout):
                        break  # server stopped reading us — the point
                timelib.sleep(0.5)
                stalled = server.stats().frames_in
                # Well below the offered load: the reader stopped once
                # the response queue and socket buffers filled.
                assert stalled < 60, (sent, stalled)
                # Other connections are untouched by the slow reader.
                reply = parse_reply(
                    transport(msg.FetchRequest(77, [0]).to_frame())
                )
                assert reply.blobs == [blobs[0][1]]
                hostile.close()


class TestDrainFlushesInflight:
    def test_stop_during_processing_still_delivers_the_reply(self):
        """stop() must not close writers under a reply still in flight:
        a request admitted before the drain began gets its response
        bytes, even when processing (here: a delayed response) is still
        pending when stop() is called."""
        import socket as socketlib
        import threading as threadinglib

        server = serve_in_thread(RsseServer(), response_delay_s=0.3)
        try:
            sock = socketlib.create_connection(
                ("127.0.0.1", server.port), timeout=10
            )
            sock.sendall(UploadRecords(5, [(1, b"x")]).to_frame())
            # Let the frame be admitted, then stop mid-delay.
            import time as timelib

            timelib.sleep(0.1)
            stopper = threadinglib.Thread(target=server.stop)
            stopper.start()
            sock.settimeout(10)
            received = b""
            while True:
                try:
                    chunk = sock.recv(4096)
                except OSError:
                    break
                if not chunk:
                    break
                received += chunk
            stopper.join()
            assert received, "reply dropped by graceful drain"
            assert isinstance(parse_reply(received), OkResponse)
        finally:
            server.stop()


class TestCloseWithInflight:
    def test_close_during_request_raises_instead_of_hanging(self):
        """Closing the transport while another thread's request is mid
        retry must fail that thread with TransportError promptly — never
        leave it blocked on a loop that stopped."""
        import time as timelib

        server = serve_in_thread(RsseServer(), response_delay_s=0.5)
        transport = NetTransport("127.0.0.1", server.port, timeout_s=30)
        outcome: "list" = []

        def requester():
            try:
                outcome.append(
                    transport(UploadRecords(3, [(1, b"z")]).to_frame())
                )
            except TransportError as exc:
                outcome.append(exc)

        t = threading.Thread(target=requester)
        t.start()
        timelib.sleep(0.1)  # the request is in flight (server delaying)
        transport.close()
        t.join(timeout=15)
        assert not t.is_alive(), "requester thread hung after close()"
        assert len(outcome) == 1  # resolved: either the reply or a typed error
        server.stop()
