"""Tests for the experiment harness (scaled-down runs + rendering)."""

from __future__ import annotations

import pathlib

import pytest

from repro.harness import experiments
from repro.harness.cli import run_experiment
from repro.harness.metrics import Series, Stopwatch, mib, timed
from repro.harness.tables import render_series, render_table, series_to_csv


class TestMetrics:
    def test_timed(self):
        result, seconds = timed(sum, [1, 2, 3])
        assert result == 6 and seconds >= 0

    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch.measure():
            pass
        with watch.measure():
            pass
        assert watch.seconds >= 0

    def test_mib(self):
        assert mib(1024 * 1024) == 1.0

    def test_series_columns_ordered(self):
        series = Series("t", "x", "y")
        series.add(1, {"a": 1.0, "b": 2.0})
        series.add(2, {"b": 3.0, "c": 4.0})
        assert series.columns() == ["a", "b", "c"]
        rows = series.as_rows()
        assert rows[1] == [2, None, 3.0, 4.0]


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_render_series_includes_title(self):
        series = Series("My Figure", "x", "seconds")
        series.add(1, {"s": 0.5})
        out = render_series(series)
        assert "My Figure" in out and "seconds" in out

    def test_csv_round_shape(self):
        series = Series("t", "x", "y")
        series.add(1, {"a": 1.0})
        csv_text = series_to_csv(series)
        assert csv_text.splitlines()[0] == "x,a"

    def test_none_rendered_as_dash(self):
        assert "-" in render_table(["c"], [[None]])


class TestScaledExperiments:
    """Tiny-parameter runs asserting the paper's qualitative shapes."""

    def test_fig5_ordering(self):
        size_series, time_series = experiments.fig5(
            sizes=(100, 200), domain=1 << 14, include_pb=False, seed=1
        )
        for point in size_series.points:
            v = point.values
            assert (
                v["constant-brc/urc"]
                < v["logarithmic-brc/urc"]
                < v["logarithmic-src"]
                <= v["logarithmic-src-i"]
            )
        # Construction time grows with n for every scheme.
        first, second = time_series.points
        for scheme in time_series.columns():
            assert second.values[scheme] > 0

    def test_table2_src_i_compact_under_skew(self):
        rows = {name: (size, t) for name, size, t in experiments.table2(n=400, include_pb=False, seed=1)}
        # Under 5%-distinct skew, SRC-i's extra index is nearly free:
        src = rows["logarithmic-src"][0]
        srci = rows["logarithmic-src-i"][0]
        assert srci < src * 1.6  # paper: "adds minimal overheads"

    def test_fig6_fp_rate_decreases(self):
        series = experiments.fig6(
            "usps", n=500, queries_per_point=6, percents=(10, 90), seed=2
        )
        first, last = series.points
        for scheme in ("logarithmic-src", "logarithmic-src-i"):
            assert last.values[scheme] <= first.values[scheme] + 0.05

    def test_fig7_log_scheme_near_floor(self):
        series = experiments.fig7(
            "usps",
            n=400,
            queries_per_point=3,
            percents=(20,),
            include_pb=False,
            seed=2,
        )
        point = series.points[0]
        # Logarithmic-BRC/URC coincide with pure SSE retrieval (paper).
        assert point.values["logarithmic-brc/urc"] < 6 * point.values["sse-floor"] + 1e-3

    def test_fig8_shapes(self):
        size_series, time_series = experiments.fig8(
            domain=1 << 16, range_sizes=(1, 64), queries_per_size=10, seed=3
        )
        small, large = size_series.points
        # SRC families: constant query size; BRC/URC: growing.
        assert small.values["logarithmic-src"] == large.values["logarithmic-src"] == 32
        assert small.values["logarithmic-src-i"] == large.values["logarithmic-src-i"] == 64
        assert large.values["logarithmic-brc"] > small.values["logarithmic-brc"]
        assert large.values["constant-urc"] >= large.values["constant-brc"]

    def test_table1_linear(self):
        rows = experiments.table1(n_small=150, n_large=600, domain=1 << 12, seed=1)
        for _, _, factor, verdict in rows:
            assert verdict == "linear-in-n ok", (factor, verdict)

    def test_ablation_urc_canonical(self):
        rows = experiments.ablation_urc(domain=1 << 12, range_sizes=(50,), trials=40, seed=1)
        ((_, brc_min, brc_max, urc_min, urc_max),) = rows
        assert urc_min == urc_max  # canonical
        assert brc_min <= urc_max

    def test_ablation_tdag_lemma1(self):
        avg, worst = experiments.ablation_tdag(domain=1 << 12, trials=200, seed=1)
        assert 1.0 <= avg <= worst <= 4.0

    def test_ablation_updates_monotone(self):
        rows = experiments.ablation_updates(
            steps=(2, 8), batches=8, batch_size=8, domain=1 << 10, seed=1
        )
        by_s = {s: active for s, active, _, _ in rows}
        assert by_s[2] <= by_s[8] + 2  # smaller s merges more aggressively


class TestCli:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")

    def test_cli_renders_ablations(self, tmp_path: pathlib.Path):
        out = run_experiment("ablation-tdag")
        assert "Lemma 1" in out
