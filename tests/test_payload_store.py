"""Tests for the encrypted document payload store."""

from __future__ import annotations

import random

import pytest

from repro.core.registry import make_scheme
from repro.errors import DomainError, IntegrityError


def build_with_payloads(name="logarithmic-brc", seed=1):
    scheme = make_scheme(name, 512, rng=random.Random(seed))
    records = [(i, i * 5 % 512) for i in range(40)]
    payloads = {i: b"document-body-%d" % i for i in range(0, 40, 2)}
    scheme.build_index(records, payloads=payloads)
    return scheme, records, payloads


class TestPayloadStore:
    def test_query_then_fetch(self):
        scheme, records, payloads = build_with_payloads()
        outcome = scheme.query(0, 511)
        docs = scheme.fetch_payloads(sorted(outcome.ids))
        assert docs == payloads  # only even ids carried documents

    def test_partial_coverage_is_fine(self):
        scheme, _, _ = build_with_payloads()
        docs = scheme.fetch_payloads([1, 3, 5])  # odd ids: no payloads
        assert docs == {}

    def test_payloads_encrypted_at_rest(self):
        scheme, _, payloads = build_with_payloads()
        for doc_id, blob in scheme._payload_store.items():
            assert payloads[doc_id] not in blob

    def test_unknown_payload_id_rejected(self):
        scheme = make_scheme("logarithmic-brc", 512, rng=random.Random(2))
        with pytest.raises(DomainError):
            scheme.build_index([(0, 5)], payloads={9: b"orphan"})

    def test_tampered_payload_detected(self):
        scheme, _, _ = build_with_payloads()
        blob = bytearray(scheme._payload_store[0])
        blob[-1] ^= 0xFF
        scheme._payload_store[0] = bytes(blob)
        with pytest.raises(IntegrityError):
            scheme.fetch_payloads([0])

    def test_works_for_src_i(self):
        scheme, records, payloads = build_with_payloads("logarithmic-src-i", seed=3)
        outcome = scheme.query(0, 100)
        matched_payload_ids = sorted(set(outcome.ids) & set(payloads))
        docs = scheme.fetch_payloads(sorted(outcome.ids))
        assert sorted(docs) == matched_payload_ids

    def test_empty_payloads_default(self):
        scheme = make_scheme("logarithmic-brc", 512, rng=random.Random(4))
        scheme.build_index([(0, 5)])
        assert scheme.fetch_payloads([0]) == {}
