"""Tests for the scheme advisor and the index self-check."""

from __future__ import annotations

import random

import pytest

from repro.core.registry import make_scheme
from repro.harness.advisor import (
    DatasetProfile,
    WorkloadProfile,
    profile_dataset,
    recommend,
)
from repro.harness.diagnostics import verify_scheme
from repro.workloads.datasets import usps_like, with_distinct_fraction


class TestProfiling:
    def test_uniform_profile(self):
        records = with_distinct_fraction(1000, 1 << 16, 0.95, seed=1)
        profile = profile_dataset(records, 1 << 16)
        assert profile.n == 1000
        assert profile.distinct_fraction > 0.9
        assert profile.max_value_share < 0.02

    def test_skewed_profile(self):
        records = usps_like(1000, seed=1)
        profile = profile_dataset(records, 276_841)
        assert profile.distinct_fraction < 0.1
        assert profile.max_value_share > 0.02

    def test_empty_dataset(self):
        profile = profile_dataset([], 100)
        assert profile.n == 0 and profile.distinct_fraction == 0.0


class TestRecommendation:
    UNIFORM = DatasetProfile(10_000, 1 << 20, 0.95, 0.001)
    SKEWED = DatasetProfile(10_000, 1 << 20, 0.05, 0.30)

    def test_default_is_logarithmic_urc(self):
        assert recommend(self.UNIFORM).scheme == "logarithmic-urc"

    def test_no_false_positives_forces_exact_scheme(self):
        rec = recommend(self.SKEWED, WorkloadProfile(false_positives_ok=False))
        assert rec.scheme == "logarithmic-urc"

    def test_hide_order_uniform_prefers_src(self):
        rec = recommend(self.UNIFORM, WorkloadProfile(hide_order=True))
        assert rec.scheme == "logarithmic-src"

    def test_hide_order_skewed_prefers_src_i(self):
        rec = recommend(self.SKEWED, WorkloadProfile(hide_order=True))
        assert rec.scheme == "logarithmic-src-i"
        assert any("skew" in reason for reason in rec.reasons)

    def test_hide_order_skewed_non_interactive_falls_back(self):
        rec = recommend(
            self.SKEWED, WorkloadProfile(hide_order=True, interactive_ok=False)
        )
        assert rec.scheme == "logarithmic-src"

    def test_storage_cap_with_batch_queries_gives_constant(self):
        rec = recommend(
            self.UNIFORM,
            WorkloadProfile(max_storage_factor=2.0, intersecting_queries=False),
        )
        assert rec.scheme == "constant-urc"

    def test_storage_cap_with_intersections_cannot_use_constant(self):
        rec = recommend(
            self.UNIFORM,
            WorkloadProfile(max_storage_factor=2.0, intersecting_queries=True),
        )
        assert rec.scheme == "logarithmic-brc"

    def test_reasons_always_present(self):
        for workload in (
            WorkloadProfile(),
            WorkloadProfile(hide_order=True),
            WorkloadProfile(false_positives_ok=False),
        ):
            assert recommend(self.UNIFORM, workload).reasons

    def test_recommended_scheme_actually_works(self):
        """End-to-end: profile → recommend → build → query correctly."""
        records = usps_like(300, seed=3)
        profile = profile_dataset(records, 276_841)
        rec = recommend(profile, WorkloadProfile(hide_order=True))
        scheme = make_scheme(rec.scheme, 276_841, rng=random.Random(1))
        scheme.build_index(records)
        expected = sorted(i for i, v in records if 10_000 <= v <= 90_000)
        assert sorted(scheme.query(10_000, 90_000).ids) == expected


class TestDiagnostics:
    def test_healthy_scheme(self, small_records):
        scheme = make_scheme("logarithmic-brc", 512, rng=random.Random(1))
        scheme.build_index(small_records)
        report = verify_scheme(
            scheme, probes=10, oracle_records=small_records, rng=random.Random(2)
        )
        assert report.healthy
        assert report.queries_run == 10
        assert report.false_positive_total == 0

    def test_healthy_fp_scheme(self, small_records):
        scheme = make_scheme("logarithmic-src", 512, rng=random.Random(1))
        scheme.build_index(small_records)
        report = verify_scheme(
            scheme, probes=10, oracle_records=small_records, rng=random.Random(2)
        )
        assert report.healthy  # FPs are allowed for SRC, refined away

    def test_detects_tampered_record_store(self, small_records):
        scheme = make_scheme("logarithmic-brc", 512, rng=random.Random(1))
        scheme.build_index(small_records)
        for rid in list(scheme._encrypted_store)[:50]:
            blob = bytearray(scheme._encrypted_store[rid])
            blob[-1] ^= 0xFF
            scheme._encrypted_store[rid] = bytes(blob)
        report = verify_scheme(scheme, probes=10, rng=random.Random(2))
        assert not report.healthy
        assert report.integrity_errors > 0

    def test_detects_oracle_disagreement(self, small_records):
        scheme = make_scheme("logarithmic-brc", 512, rng=random.Random(1))
        scheme.build_index(small_records)
        wrong_oracle = [(i, (v + 7) % 512) for i, v in small_records]
        report = verify_scheme(
            scheme, probes=10, oracle_records=wrong_oracle, rng=random.Random(2)
        )
        assert not report.healthy
        assert any("disagrees" in f for f in report.failures)

    def test_works_on_restored_snapshot(self, small_records, tmp_path):
        from repro.io import load_scheme, save_scheme

        scheme = make_scheme("logarithmic-src-i", 512, rng=random.Random(1))
        scheme.build_index(small_records)
        save_scheme(scheme, tmp_path / "x.rsse", passphrase="p")
        restored = load_scheme(tmp_path / "x.rsse", passphrase="p")
        report = verify_scheme(
            restored, probes=8, oracle_records=small_records, rng=random.Random(3)
        )
        assert report.healthy
