"""Tests for the DPRF and interactive remote clients."""

from __future__ import annotations

import random

import pytest

from repro.core.constant import ConstantBrc
from repro.core.log_src_i import LogarithmicSrcI
from repro.core.logarithmic import LogarithmicBrc
from repro.errors import IndexStateError, QueryIntersectionError
from repro.protocol import RemoteConstantClient, RemoteSrcIClient, RsseServer


class TestRemoteConstantClient:
    def test_matches_oracle(self, small_records, small_oracle):
        server = RsseServer()
        scheme = ConstantBrc(512, rng=random.Random(1), intersection_policy="allow")
        client = RemoteConstantClient(scheme, server.handle, rng=random.Random(2))
        client.outsource(small_records)
        assert scheme._index is None
        for lo, hi in [(0, 511), (100, 180), (250, 250)]:
            assert sorted(client.query(lo, hi)) == sorted(small_oracle.query(lo, hi))

    def test_guard_still_enforced_remotely(self, small_records):
        server = RsseServer()
        scheme = ConstantBrc(512, rng=random.Random(1))  # policy: raise
        client = RemoteConstantClient(scheme, server.handle, rng=random.Random(2))
        client.outsource(small_records)
        client.query(10, 20)
        with pytest.raises(QueryIntersectionError):
            client.query(15, 30)

    def test_wrong_scheme_type_rejected(self):
        server = RsseServer()
        with pytest.raises(IndexStateError):
            RemoteConstantClient(
                LogarithmicBrc(64, rng=random.Random(1)), server.handle
            )

    def test_query_before_outsource(self, small_records):
        server = RsseServer()
        scheme = ConstantBrc(512, rng=random.Random(1), intersection_policy="allow")
        client = RemoteConstantClient(scheme, server.handle)
        with pytest.raises(IndexStateError):
            client.query(0, 5)


class TestRemoteSrcIClient:
    def test_two_round_protocol_matches_oracle(self, small_records, small_oracle):
        server = RsseServer()
        scheme = LogarithmicSrcI(512, rng=random.Random(1))
        client = RemoteSrcIClient(scheme, server.handle, rng=random.Random(2))
        client.outsource(small_records)
        assert scheme._index1 is None and scheme._index2 is None
        for lo, hi in [(0, 511), (40, 260), (250, 250), (0, 0)]:
            assert sorted(client.query(lo, hi)) == sorted(small_oracle.query(lo, hi))

    def test_empty_first_round_short_circuits(self):
        server = RsseServer()
        scheme = LogarithmicSrcI(512, rng=random.Random(1))
        client = RemoteSrcIClient(scheme, server.handle, rng=random.Random(2))
        client.outsource([(0, 10), (1, 500)])
        assert client.query(100, 300) == frozenset()

    def test_two_indexes_uploaded(self, small_records):
        server = RsseServer()
        scheme = LogarithmicSrcI(512, rng=random.Random(1))
        client = RemoteSrcIClient(scheme, server.handle, rng=random.Random(2))
        client.outsource(small_records)
        assert server.index_count() == 2

    def test_wrong_scheme_type_rejected(self):
        server = RsseServer()
        with pytest.raises(IndexStateError):
            RemoteSrcIClient(LogarithmicBrc(64, rng=random.Random(1)), server.handle)

    def test_transport_counting(self, small_records, small_oracle):
        """A full SRC-i query is exactly 3 frames: round 1, round 2, fetch."""
        server = RsseServer()
        frames = []

        def counting_transport(frame):
            frames.append(frame)
            return server.handle(frame)

        scheme = LogarithmicSrcI(512, rng=random.Random(1))
        client = RemoteSrcIClient(scheme, counting_transport, rng=random.Random(2))
        client.outsource(small_records)
        frames.clear()
        client.query(40, 260)
        assert len(frames) == 3
