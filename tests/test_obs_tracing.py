"""Unit tests for cross-layer tracing (PR 8 tentpole, part 2).

Covers the span/no-op fast path, trace collection and depth tracking,
span caps, ring-buffer eviction, context isolation across threads, and
the Chrome-trace / JSONL export formats.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.tracing import (
    MAX_SPANS_PER_TRACE,
    TraceBuffer,
    _NULL_SPAN,
    current_trace_id,
    new_trace_id,
    span,
    start_trace,
    to_chrome_trace,
    to_jsonl_lines,
)


class TestSpanFastPath:
    def test_span_outside_trace_is_shared_noop(self):
        # No allocation on the untraced hot path: the same singleton
        # no-op comes back for every name.
        assert span("engine.wave") is _NULL_SPAN
        assert span("kernel.batch", units=5) is _NULL_SPAN

    def test_no_trace_id_outside_trace(self):
        assert current_trace_id() is None

    def test_noop_span_is_reentrant(self):
        with span("a"):
            with span("b"):
                pass  # nothing recorded anywhere, nothing raised


class TestStartTrace:
    def test_collects_root_and_nested_spans(self):
        buf = TraceBuffer()
        tid = new_trace_id()
        with start_trace(tid, buf, "server.handle", kind="sse"):
            assert current_trace_id() == tid
            with span("engine.wave", walkers=2):
                with span("storage.get_many"):
                    pass
        assert current_trace_id() is None
        (trace,) = buf.snapshot()
        assert trace["trace_id"] == tid
        names = [s["name"] for s in trace["spans"]]
        # Children record on exit, so they precede the root.
        assert names == ["storage.get_many", "engine.wave", "server.handle"]
        depths = {s["name"]: s["depth"] for s in trace["spans"]}
        assert depths["server.handle"] == 0
        assert depths["engine.wave"] == 1
        assert depths["storage.get_many"] == 2
        root = trace["spans"][-1]
        assert root["meta"] == {"kind": "sse"}
        assert root["duration_s"] >= 0.0

    def test_failing_body_still_buffers_the_trace(self):
        buf = TraceBuffer()
        with pytest.raises(ValueError):
            with start_trace("t1", buf, "root"):
                raise ValueError("boom")
        (trace,) = buf.snapshot()
        assert trace["spans"][-1]["error"] == "ValueError"
        assert current_trace_id() is None  # contextvar was reset

    def test_span_cap_counts_drops(self):
        buf = TraceBuffer()
        with start_trace("big", buf, "root"):
            for _ in range(MAX_SPANS_PER_TRACE + 50):
                with span("tick"):
                    pass
        (trace,) = buf.snapshot()
        assert len(trace["spans"]) == MAX_SPANS_PER_TRACE
        # root itself was dropped too (the cap hit before its exit)
        assert trace["dropped_spans"] == 51

    def test_none_buffer_discards_silently(self):
        with start_trace("t", None, "root"):
            with span("child"):
                pass  # nothing to assert — just must not raise

    def test_threads_outside_trace_stay_untraced(self):
        """contextvars don't leak into unrelated threads: a worker
        spawned outside the trace context records nothing."""
        buf = TraceBuffer()
        seen = []

        def worker():
            seen.append(span("background"))

        with start_trace("t", buf, "root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen == [_NULL_SPAN]


class TestTraceBuffer:
    def test_ring_drops_oldest(self):
        buf = TraceBuffer(capacity=3)
        for i in range(5):
            with start_trace(f"t{i}", buf, "root"):
                pass
        assert len(buf) == 3
        assert buf.evicted == 2
        assert buf.trace_ids() == {"t2", "t3", "t4"}

    def test_snapshot_limit_returns_most_recent(self):
        buf = TraceBuffer()
        for i in range(4):
            with start_trace(f"t{i}", buf, "root"):
                pass
        ids = [t["trace_id"] for t in buf.snapshot(limit=2)]
        assert ids == ["t2", "t3"]
        assert len(buf.snapshot()) == 4

    def test_find_and_clear(self):
        buf = TraceBuffer()
        with start_trace("wanted", buf, "root"):
            pass
        with start_trace("other", buf, "root"):
            pass
        assert [t["trace_id"] for t in buf.find("wanted")] == ["wanted"]
        assert buf.find("missing") == []
        buf.clear()
        assert len(buf) == 0


class TestExports:
    def _one_trace(self):
        buf = TraceBuffer()
        with start_trace("abc123", buf, "server.handle", queries=2):
            with span("engine.wave"):
                pass
        return buf.snapshot()

    def test_chrome_trace_shape(self):
        doc = to_chrome_trace(self._one_trace(), label="shard0")
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 1
        assert meta[0]["args"]["name"] == "shard0:abc123"
        assert {e["name"] for e in slices} == {"server.handle", "engine.wave"}
        for e in slices:
            assert e["pid"] == 0
            assert e["ts"] > 0 and e["dur"] >= 0  # microseconds
        # depth → tid keeps nesting stacked in the viewer
        tids = {e["name"]: e["tid"] for e in slices}
        assert tids["server.handle"] == 0
        assert tids["engine.wave"] == 1
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_chrome_trace_separates_traces_by_pid(self):
        buf = TraceBuffer()
        for tid in ("t0", "t1"):
            with start_trace(tid, buf, "root"):
                pass
        doc = to_chrome_trace(buf.snapshot())
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {0, 1}

    def test_chrome_trace_surfaces_errors(self):
        buf = TraceBuffer()
        with pytest.raises(RuntimeError):
            with start_trace("t", buf, "root"):
                raise RuntimeError
        doc = to_chrome_trace(buf.snapshot())
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["args"]["error"] == "RuntimeError"

    def test_jsonl_lines_parse_back(self):
        lines = to_jsonl_lines(self._one_trace())
        rows = [json.loads(line) for line in lines]
        assert len(rows) == 2
        assert all(r["trace_id"] == "abc123" for r in rows)
        assert {r["name"] for r in rows} == {"server.handle", "engine.wave"}

    def test_empty_exports(self):
        assert to_chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}
        assert to_jsonl_lines([]) == []
