"""Concurrency semantics of the network server.

The service promise: interleaved uploads and searches from many
concurrent clients behave exactly like their serial in-process
equivalents — per-index write locks keep uploads consistent, lock-free
searches never observe torn state, and no client's traffic poisons
another's.  Verified differentially against the plaintext oracle on
both the in-memory and the (single-connection, lock-serialized) SQLite
backends.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import make_scheme
from repro.baselines.plaintext import PlaintextRangeIndex
from repro.net import NetTransport, serve_in_thread
from repro.protocol import RemoteRangeClient, RsseServer
from repro.storage import InMemoryBackend, SqliteBackend

CLIENTS = 8
DOMAIN = 256


def _records(seed: int, n: int):
    rng = random.Random(seed)
    return [(i, rng.randrange(DOMAIN)) for i in range(n)]


def _backend(kind: str, tmp_path):
    if kind == "memory":
        return InMemoryBackend()
    return SqliteBackend(tmp_path / "net-concurrency.sqlite")


@pytest.mark.parametrize("backend_kind", ["memory", "sqlite"])
def test_interleaved_upload_search_matches_serial(backend_kind, tmp_path):
    """≥8 clients hammer one server: all of them search a shared index
    while each also uploads and queries its own — every answer must
    equal the plaintext oracle, exactly as a serial run would."""
    shared_records = _records(seed=1, n=300)
    shared_oracle = PlaintextRangeIndex(shared_records)
    shared_scheme = make_scheme(
        "logarithmic-brc", DOMAIN, rng=random.Random(100)
    )

    with serve_in_thread(RsseServer(_backend(backend_kind, tmp_path))) as server:
        with NetTransport("127.0.0.1", server.port) as owner_transport:
            owner = RemoteRangeClient(
                shared_scheme, owner_transport, rng=random.Random(0)
            )
            owner.outsource(shared_records)

            failures: "list[str]" = []
            barrier = threading.Barrier(CLIENTS)

            def worker(worker_id: int) -> None:
                try:
                    rng = random.Random(1000 + worker_id)
                    own_records = _records(seed=worker_id + 2, n=60)
                    own_oracle = PlaintextRangeIndex(own_records)
                    own_scheme = make_scheme(
                        "logarithmic-brc", DOMAIN, rng=random.Random(worker_id)
                    )
                    with NetTransport("127.0.0.1", server.port) as transport:
                        shared_client = RemoteRangeClient(
                            shared_scheme, transport, index_id=owner.index_id
                        )
                        shared_client.attach()
                        own_client = RemoteRangeClient(
                            own_scheme, transport, rng=rng
                        )
                        barrier.wait(timeout=30)
                        # Interleave: search shared, upload own (write
                        # traffic against the same server, distinct
                        # index), search both, repeat on the shared one.
                        for round_no in range(3):
                            lo = rng.randrange(DOMAIN)
                            hi = rng.randrange(lo, DOMAIN)
                            got = shared_client.query(lo, hi)
                            want = frozenset(shared_oracle.query(lo, hi))
                            if got != want:
                                failures.append(
                                    f"w{worker_id} r{round_no} shared "
                                    f"[{lo},{hi}]: {sorted(got)} != {sorted(want)}"
                                )
                            if round_no == 0:
                                own_client.outsource(own_records)
                            lo = rng.randrange(DOMAIN)
                            hi = rng.randrange(lo, DOMAIN)
                            got = own_client.query(lo, hi)
                            want = frozenset(own_oracle.query(lo, hi))
                            if got != want:
                                failures.append(
                                    f"w{worker_id} r{round_no} own "
                                    f"[{lo},{hi}]: {sorted(got)} != {sorted(want)}"
                                )
                        own_client.retire()
                except Exception as exc:  # noqa: BLE001 — report, don't hang
                    failures.append(f"w{worker_id} crashed: {exc!r}")

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not failures, "\n".join(failures)

            # The shared index survived all the concurrent write traffic.
            assert owner.query(0, DOMAIN - 1) == frozenset(
                shared_oracle.query(0, DOMAIN - 1)
            )
            stats = server.stats()
            assert stats.connections_total >= CLIENTS + 1
            assert stats.errors == 0


@pytest.mark.parametrize("backend_kind", ["memory", "sqlite"])
def test_concurrent_uploads_to_one_index_serialize(backend_kind, tmp_path):
    """Racing upload frames for the *same* handle apply atomically:
    after N concurrent record uploads, every record is present (no
    torn batch, no lost update)."""
    from repro.protocol.messages import UploadRecords

    with serve_in_thread(RsseServer(_backend(backend_kind, tmp_path))) as server:
        batches = [
            [(100 * b + i, b"payload-%d-%d" % (b, i)) for i in range(50)]
            for b in range(CLIENTS)
        ]
        barrier = threading.Barrier(CLIENTS)
        failures: "list[str]" = []

        def uploader(batch_no: int) -> None:
            try:
                with NetTransport("127.0.0.1", server.port) as transport:
                    barrier.wait(timeout=30)
                    transport(UploadRecords(42, batches[batch_no]).to_frame())
            except Exception as exc:  # noqa: BLE001
                failures.append(f"b{batch_no}: {exc!r}")

        threads = [
            threading.Thread(target=uploader, args=(i,)) for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not failures, "\n".join(failures)

        from repro.protocol import parse_reply
        from repro.protocol.messages import FetchRequest

        all_ids = [rid for batch in batches for rid, _ in batch]
        with NetTransport("127.0.0.1", server.port) as transport:
            reply = parse_reply(transport(FetchRequest(42, all_ids).to_frame()))
        expected = [blob for batch in batches for _, blob in batch]
        assert reply.blobs == expected


def test_reconnect_under_load_keeps_replies_aligned():
    """Kill one pooled connection mid-``send_many``: every frame must
    still get exactly its own reply, in position (no duplicated,
    dropped, or cross-wired responses after the rebuild-and-retry).

    The server runs a serialized per-response service time
    (``sim_core_floor_s``) so replies trickle out one by one — the kill
    provably lands while most of the batch is still in flight on the
    doomed connection.
    """
    import time

    from repro.protocol.messages import FetchRequest, UploadRecords

    n = 40
    records = [(i, b"record-%03d" % i) for i in range(n)]
    with serve_in_thread(
        RsseServer(), sim_core_floor_s=0.03, max_inflight=512
    ) as server:
        with NetTransport("127.0.0.1", server.port) as setup:
            setup(UploadRecords(7, records).to_frame())
        # One FetchRequest per distinct record: reply i is recognizably
        # frame i's answer, so positional equality proves 1:1 pairing.
        frames = [FetchRequest(7, [i]).to_frame() for i in range(n)]
        with NetTransport("127.0.0.1", server.port, pool_size=2) as baseline:
            expected = baseline.send_many(frames)
        assert len({bytes(r) for r in expected}) == n  # all distinct

        with NetTransport("127.0.0.1", server.port, pool_size=2) as transport:
            results: "list[list[bytes]]" = []
            errors: "list[BaseException]" = []

            def run_batch() -> None:
                try:
                    results.append(transport.send_many(frames))
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            batch_thread = threading.Thread(target=run_batch)
            batch_thread.start()
            # ~10 of 40 replies served at 30ms each — the rest are
            # pending when the server-side writer dies under them.
            time.sleep(0.3)
            victims = [
                w for w in server.server._writers if not w.is_closing()
            ]
            assert victims, "no live server-side connection to kill"
            server._loop.call_soon_threadsafe(victims[0].close)
            batch_thread.join(timeout=60)
            assert not errors, errors
            assert results and results[0] == expected
