"""The bulk storage I/O contract: get_many / put_many / delete_many /
transaction across all four backends, and the regression guards that
keep callers off the per-key fallback paths."""

from __future__ import annotations

import random

import pytest

from repro.core.registry import make_scheme
from repro.errors import UpdateError
from repro.storage import (
    InMemoryBackend,
    NamespaceMap,
    PrefixedBackend,
    ShardedBackend,
    SqliteBackend,
    StorageBackend,
)
from repro.updates.batch import OpKind, UpdateOp, insert

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - CI installs hypothesis
    HAVE_HYPOTHESIS = False

BACKENDS = ("memory", "sqlite", "sharded", "prefixed")


def _make_backend(kind: str, tmp_path):
    if kind == "memory":
        return InMemoryBackend()
    if kind == "sqlite":
        return SqliteBackend(tmp_path / f"kv-{random.randrange(1 << 48)}.sqlite")
    if kind == "sharded":
        return ShardedBackend(shard_count=3)
    return PrefixedBackend(InMemoryBackend(), "pfx/")


@pytest.fixture
def backend(request, tmp_path):
    be = _make_backend(request.param, tmp_path)
    yield be
    be.close()


# ---------------------------------------------------------------------------
# Observational equivalence: each bulk op == the per-op loop
# ---------------------------------------------------------------------------

#: Small key alphabet so batches collide with existing state and contain
#: duplicates often.
_KEYS = [bytes([b]) * 3 for b in range(8)]

if HAVE_HYPOTHESIS:
    _ops_strategy = st.lists(
        st.one_of(
            st.tuples(
                st.just("put_many"),
                st.lists(
                    st.tuples(st.sampled_from(_KEYS), st.binary(max_size=6)),
                    max_size=6,
                ),
            ),
            st.tuples(
                st.just("get_many"),
                st.lists(st.sampled_from(_KEYS), max_size=6),
            ),
            st.tuples(
                st.just("delete_many"),
                st.lists(st.sampled_from(_KEYS), max_size=6),
            ),
        ),
        max_size=12,
    )

    @settings(max_examples=40, deadline=None)
    @given(ops=_ops_strategy)
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_bulk_ops_match_per_op_loops(kind, tmp_path_factory, ops):
        """Random op sequences: the bulk contract is observationally
        identical to N single-key calls (including duplicate keys inside
        one batch and empty batches)."""
        tmp = tmp_path_factory.mktemp("prop")
        bulk = _make_backend(kind, tmp)
        reference = InMemoryBackend()  # driven through base-class loops
        try:
            for op, payload in ops:
                if op == "put_many":
                    bulk.put_many("ns", payload)
                    for key, value in payload:
                        reference.put("ns", key, value)
                elif op == "get_many":
                    got = bulk.get_many("ns", payload)
                    want = [reference.get("ns", key) for key in payload]
                    assert got == want
                else:
                    removed = bulk.delete_many("ns", payload)
                    want_removed = sum(
                        1 for key in payload if reference.delete("ns", key)
                    )
                    assert removed == want_removed
                assert dict(bulk.items("ns")) == dict(reference.items("ns"))
                assert bulk.count("ns") == reference.count("ns")
        finally:
            bulk.close()


@pytest.mark.parametrize("backend", BACKENDS, indirect=True)
class TestBulkContract:
    def test_empty_batches_are_noops(self, backend):
        backend.put_many("ns", [])
        assert backend.get_many("ns", []) == []
        assert backend.delete_many("ns", []) == 0
        assert backend.count("ns") == 0
        assert "ns" not in backend.namespaces()

    def test_get_many_request_order_and_duplicates(self, backend):
        backend.put_many("ns", [(b"a", b"1"), (b"b", b"2")])
        got = backend.get_many("ns", [b"b", b"missing", b"a", b"b"])
        assert got == [b"2", None, b"1", b"2"]

    def test_put_many_duplicate_keys_last_wins(self, backend):
        backend.put_many("ns", [(b"k", b"first"), (b"k", b"second")])
        assert backend.get("ns", b"k") == b"second"
        assert backend.count("ns") == 1

    def test_delete_many_counts_existing_once(self, backend):
        backend.put_many("ns", [(b"a", b"1"), (b"b", b"2")])
        assert backend.delete_many("ns", [b"a", b"a", b"missing", b"b"]) == 2
        assert backend.count("ns") == 0

    def test_transaction_groups_visible_writes(self, backend):
        with backend.transaction():
            backend.put("ns", b"k1", b"v1")
            backend.put_many("ns", [(b"k2", b"v2")])
            with backend.transaction():  # reentrant
                backend.put("ns", b"k3", b"v3")
        assert backend.get_many("ns", [b"k1", b"k2", b"k3"]) == [b"v1", b"v2", b"v3"]


class TestSqliteTransaction:
    def test_rollback_on_exception(self, tmp_path):
        be = SqliteBackend(tmp_path / "kv.sqlite")
        be.put("ns", b"stable", b"v")
        with pytest.raises(RuntimeError):
            with be.transaction():
                be.put("ns", b"doomed", b"v")
                raise RuntimeError("boom")
        assert be.get("ns", b"doomed") is None
        assert be.get("ns", b"stable") == b"v"
        be.close()

    def test_nested_blocks_commit_once_at_outermost(self, tmp_path):
        be = SqliteBackend(tmp_path / "kv.sqlite")
        with be.transaction():
            with be.transaction():
                be.put("ns", b"k", b"v")
            assert be._txn_depth == 1  # still inside the outer block
        assert be._txn_depth == 0
        assert be.get("ns", b"k") == b"v"
        be.close()

    def test_wal_mode_enabled(self, tmp_path):
        be = SqliteBackend(tmp_path / "kv.sqlite")
        (mode,) = be._conn.execute("PRAGMA journal_mode").fetchone()
        assert mode.lower() == "wal"
        be.close()

    def test_chunked_in_clause_beyond_chunk_size(self, tmp_path):
        from repro.storage.backend import _SQL_CHUNK

        be = SqliteBackend(tmp_path / "kv.sqlite")
        n = _SQL_CHUNK + 17
        entries = [(i.to_bytes(4, "big"), bytes([i % 251])) for i in range(n)]
        be.put_many("ns", entries)
        got = be.get_many("ns", [k for k, _ in entries])
        assert got == [v for _, v in entries]
        assert be.delete_many("ns", [k for k, _ in entries]) == n
        be.close()


# ---------------------------------------------------------------------------
# Spy-backend regressions: the bulk paths must actually be taken
# ---------------------------------------------------------------------------


class SpyBackend(InMemoryBackend):
    """Counts per-op and bulk calls to prove callers stay on the bulk path."""

    probe_batch = 16  # pretend round-trips are expensive, like SQLite

    def __init__(self):
        super().__init__()
        self.calls = {
            "get": 0, "put": 0, "delete": 0,
            "get_many": 0, "put_many": 0, "delete_many": 0,
        }

    def get(self, ns, key):
        self.calls["get"] += 1
        return super().get(ns, key)

    def put(self, ns, key, value):
        self.calls["put"] += 1
        super().put(ns, key, value)

    def delete(self, ns, key):
        self.calls["delete"] += 1
        return super().delete(ns, key)

    def get_many(self, ns, keys):
        self.calls["get_many"] += 1
        return super().get_many(ns, keys)

    def put_many(self, ns, entries):
        self.calls["put_many"] += 1
        super().put_many(ns, entries)

    def delete_many(self, ns, keys):
        self.calls["delete_many"] += 1
        return super().delete_many(ns, keys)


class TestNoPerKeyFallbacks:
    def test_sharded_put_many_reaches_shard_put_many(self):
        spies = [SpyBackend() for _ in range(3)]
        sharded = ShardedBackend(spies)
        entries = [(i.to_bytes(8, "big"), b"v") for i in range(60)]
        sharded.put_many("ns", entries)
        assert sum(s.calls["put_many"] for s in spies) == len(
            [s for s in spies if s.count("ns")]
        )
        assert all(s.calls["put"] == 0 for s in spies)  # never per-key
        assert sharded.count("ns") == 60

    def test_sharded_get_delete_many_reach_shard_bulk_ops(self):
        spies = [SpyBackend() for _ in range(3)]
        sharded = ShardedBackend(spies)
        entries = [(i.to_bytes(8, "big"), bytes([i])) for i in range(60)]
        sharded.put_many("ns", entries)
        keys = [k for k, _ in entries]
        assert sharded.get_many("ns", keys) == [v for _, v in entries]
        assert all(s.calls["get"] == 0 for s in spies)
        assert sharded.delete_many("ns", keys) == 60
        assert all(s.calls["delete"] == 0 for s in spies)

    def test_scheme_build_never_writes_per_key_stores(self):
        """BuildIndex emits EDB + tuple store through put_many only
        (the single put is the index-presence marker)."""
        spy = SpyBackend()
        scheme = make_scheme(
            "logarithmic-brc", 256, rng=random.Random(3), backend=spy
        )
        scheme.build_index([(rid, rid % 256) for rid in range(100)])
        assert spy.calls["put_many"] >= 2  # EDB + tuple store
        assert spy.calls["put"] <= len(scheme.index_names())  # meta markers only

    def test_coalesced_fetch_uses_get_many(self):
        spy = SpyBackend()
        scheme = make_scheme(
            "logarithmic-brc", 256, rng=random.Random(3), backend=spy
        )
        scheme.build_index([(rid, rid % 256) for rid in range(100)])
        spy.calls["get"] = 0
        spy.calls["get_many"] = 0
        outcome = scheme.query(10, 30)
        assert outcome.ids == {
            rid for rid in range(100) if 10 <= rid % 256 <= 30
        }
        assert spy.calls["get_many"] > 0
        # The tuple fetch and the counter walks are batched; bare gets
        # are allowed only for O(1) metadata (index-presence markers),
        # never one per tuple or per posting.
        assert spy.calls["get"] < 10

    def test_remote_upload_and_fetch_stay_bulk(self):
        from repro.protocol.client import RemoteRangeClient
        from repro.protocol.server import RsseServer

        spy = SpyBackend()
        server = RsseServer(backend=spy)
        scheme = make_scheme("logarithmic-brc", 128, rng=random.Random(5))
        client = RemoteRangeClient(scheme, server.handle, rng=random.Random(6))
        client.outsource([(rid, rid % 128) for rid in range(80)])
        spy.calls["get"] = 0
        results = client.query_many([(0, 40), (60, 90)])
        assert results[0] == {rid for rid in range(80) if rid % 128 <= 40}
        assert spy.calls["get_many"] > 0
        assert spy.calls["get"] <= 4  # handle/meta lookups, not tuples


class TestNamespaceMapBulk:
    def test_get_many_and_update(self):
        spy = SpyBackend()
        view = NamespaceMap(spy, "ops")
        view.update({1: b"one", 2: b"two"})
        view.update([(3, b"three")])
        assert spy.calls["put_many"] == 2 and spy.calls["put"] == 0
        assert view.get_many([2, 9, 1]) == [b"two", None, b"one"]
        assert spy.calls["get_many"] == 1 and spy.calls["get"] == 0


# ---------------------------------------------------------------------------
# Satellites: sharded namespaces dedupe, UpdateOp validation
# ---------------------------------------------------------------------------


class TestShardedNamespaces:
    def test_dedupe_preserves_first_seen_order(self):
        shards = [InMemoryBackend() for _ in range(3)]
        sharded = ShardedBackend(shards)
        shards[0].put("beta", b"k", b"v")
        shards[0].put("alpha", b"k", b"v")
        shards[1].put("alpha", b"k", b"v")
        shards[2].put("gamma", b"k", b"v")
        shards[2].put("beta", b"k", b"v")
        assert sharded.namespaces() == ["beta", "alpha", "gamma"]


class TestUpdateOpValidation:
    def test_negative_record_id_names_field(self):
        with pytest.raises(UpdateError, match="record_id"):
            UpdateOp(OpKind.INSERT, -1, 5)

    def test_oversized_value_names_field(self):
        with pytest.raises(UpdateError, match="value"):
            UpdateOp(OpKind.INSERT, 1, 1 << 64)

    def test_bool_rejected(self):
        with pytest.raises(UpdateError, match="record_id"):
            UpdateOp(OpKind.DELETE, True, 5)

    def test_valid_bounds_roundtrip(self):
        op = insert((1 << 64) - 1, 0)
        assert UpdateOp.decode(op.encode()) == op
