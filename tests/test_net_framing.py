"""The stream framing codec: reassembly under arbitrary fragmentation.

TCP may deliver a frame in one piece, byte by byte, or glued to its
neighbours; the reader must produce the identical frame sequence in
every case, and must reject garbage headers *before* buffering the
bodies they claim.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FramingError
from repro.net.framing import HEADER_SIZE, FrameReader
from repro.protocol.messages import (
    OkResponse,
    SearchRequest,
    SearchResponse,
    UploadRecords,
)


def _sample_frames():
    return [
        SearchRequest(1, "sse", [b"t" * 32]).to_frame(),
        OkResponse().to_frame(),
        UploadRecords(9, [(1, b"blob"), (2, b"b" * 100)]).to_frame(),
        SearchResponse([b"p1", b"p2", b"p3"]).to_frame(),
    ]


class TestReassembly:
    @given(
        order=st.lists(st.integers(0, 3), min_size=1, max_size=8),
        cuts=st.lists(st.integers(1, 50), max_size=30),
    )
    @settings(max_examples=200)
    def test_any_chunking_reassembles_exactly(self, order, cuts):
        """Slicing the stream at arbitrary byte offsets never changes
        the decoded frame sequence."""
        frames = _sample_frames()
        stream = b"".join(frames[i] for i in order)
        reader = FrameReader()
        got: "list[bytes]" = []
        position = 0
        for cut in cuts:
            got.extend(reader.feed(stream[position : position + cut]))
            position += cut
        got.extend(reader.feed(stream[position:]))
        assert got == [frames[i] for i in order]

    def test_partial_frame_yields_nothing(self):
        frame = SearchRequest(1, "sse", [b"t" * 32]).to_frame()
        reader = FrameReader()
        assert reader.feed(frame[:-1]) == []
        assert reader.buffered_bytes == len(frame) - 1
        assert reader.feed(frame[-1:]) == [frame]
        assert reader.buffered_bytes == 0

    def test_header_split_across_feeds(self):
        frame = OkResponse().to_frame()
        reader = FrameReader()
        for byte in frame[:-1]:
            assert reader.feed(bytes([byte])) == []
        assert reader.feed(frame[-1:]) == [frame]


class TestHostileHeaders:
    def test_oversized_length_rejected_before_buffering(self):
        reader = FrameReader(max_frame_bytes=1024)
        header = struct.pack(">BI", 3, 1 << 30)
        assert reader.feed(header) == []
        assert isinstance(reader.error, FramingError)
        # The claimed gigabyte body was never awaited, let alone stored.
        assert reader.buffered_bytes <= HEADER_SIZE

    def test_unknown_tag_rejected(self):
        reader = FrameReader()
        assert reader.feed(struct.pack(">BI", 0xFF, 4) + b"body") == []
        assert isinstance(reader.error, FramingError)

    def test_frames_before_the_poison_still_delivered(self):
        """A peer's valid requests get their replies even when its next
        byte is hostile — only the stream *after* the bad header dies."""
        frame = OkResponse().to_frame()
        reader = FrameReader()
        assert reader.feed(frame + b"\xde\xad\xbe\xef\x00\x00") == [frame]
        assert isinstance(reader.error, FramingError)

    def test_poisoned_reader_raises_on_further_feeds(self):
        reader = FrameReader()
        reader.feed(struct.pack(">BI", 0xFF, 0))
        assert reader.error is not None
        with pytest.raises(FramingError):
            reader.feed(OkResponse().to_frame())

    @given(st.binary(min_size=HEADER_SIZE, max_size=64))
    @settings(max_examples=200)
    def test_random_bytes_bounded_failure(self, blob):
        """Random streams either buffer (awaiting a plausible body),
        decode, or condemn the stream — never anything else, and never
        more buffered bytes than were fed."""
        reader = FrameReader(max_frame_bytes=4096)
        frames = reader.feed(blob)
        assert reader.buffered_bytes <= len(blob)
        assert all(f.startswith(blob[:1]) for f in frames[:1])
